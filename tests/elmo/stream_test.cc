#include "elmo/stream.h"

#include <gtest/gtest.h>

#include <vector>

#include "elmo/churn.h"
#include "testutil.h"
#include "util/rng.h"

namespace elmo::stream {
namespace {

EncoderConfig config_for(EncoderKind kind) {
  EncoderConfig cfg;
  cfg.encoder = kind;
  cfg.hmax_leaf_override = 2;  // force s-rules so every rule kind appears
  return cfg;
}

// Hand-built single-tenant world with co-located VMs (4 VMs per host).
struct StreamWorld {
  explicit StreamWorld(EncoderKind kind = EncoderKind::kElmo,
                       std::uint32_t vms = 40)
      : topology{topo::ClosParams::small_test()},
        controller{topology, config_for(kind)},
        fabric{topology} {
    tenants.resize(1);
    tenants[0].id = 0;
    for (std::uint32_t vm = 0; vm < vms; ++vm) {
      tenants[0].vm_hosts.push_back((vm / 4) % topology.num_hosts());
    }
  }

  GroupId make_group(std::span<const std::uint32_t> vms) {
    std::vector<Member> members;
    for (const auto vm : vms) {
      members.push_back(Member{tenants[0].vm_hosts[vm], vm, MemberRole::kBoth});
    }
    return controller.create_group(0, members);
  }

  topo::ClosTopology topology;
  Controller controller;
  sim::Fabric fabric;
  std::vector<cloud::Tenant> tenants;
};

TEST(ControlPlane, JoinOnUntrackedGroupStreamsFullInstall) {
  StreamWorld w;
  const std::vector<std::uint32_t> vms{0, 4, 8};
  const auto id = w.make_group(vms);

  ControlPlane cp{w.controller, w.fabric, ControlPlaneOptions{1}};
  cp.refresh(id);  // untracked: emits the full install

  sim::Fabric batch{w.topology};
  batch.install_group(w.controller, id);
  EXPECT_EQ(fabric_state_digest(w.fabric), fabric_state_digest(batch));
  EXPECT_GT(cp.stats().updates_applied, 0u);
  EXPECT_GT(cp.stats().wire_bytes, 0u);
}

TEST(ControlPlane, JoinEmitsDeltaNotFullReinstall) {
  StreamWorld w;
  const std::vector<std::uint32_t> vms{0, 4, 8, 12, 16, 20};
  const auto id = w.make_group(vms);
  w.fabric.install_group(w.controller, id);

  ControlPlane cp{w.controller, w.fabric, ControlPlaneOptions{1}};
  cp.track_group(id);
  EXPECT_EQ(cp.stats().updates_applied, 0u);  // tracking emits nothing

  // A receiver joining a host that already has a member: the receiver host
  // set is unchanged, so the tree, encoding and every sender header stay
  // put — the delta must be exactly ONE flow update (that host's local_vms
  // gained a VM), not a re-push of the whole group.
  const std::uint32_t joining_vm = 1;  // co-located with vm 0
  ASSERT_EQ(w.tenants[0].vm_hosts[joining_vm], w.tenants[0].vm_hosts[0]);
  cp.join(id, Member{w.tenants[0].vm_hosts[joining_vm], joining_vm,
                     MemberRole::kReceiver});
  cp.flush();

  EXPECT_EQ(cp.stats().flow_adds, 1u)
      << "a delta install must not re-push every member's flow";
  EXPECT_EQ(cp.stats().leaf_srule_adds + cp.stats().spine_srule_adds, 0u);
  EXPECT_EQ(cp.stats().updates_applied, 1u);

  sim::Fabric batch{w.topology};
  batch.install_group(w.controller, id);
  EXPECT_EQ(fabric_state_digest(w.fabric), fabric_state_digest(batch));
}

TEST(ControlPlane, LeaveRemovesVacatedHostFlow) {
  StreamWorld w;
  const std::vector<std::uint32_t> vms{0, 4, 8};
  const auto id = w.make_group(vms);
  w.fabric.install_group(w.controller, id);

  ControlPlane cp{w.controller, w.fabric, ControlPlaneOptions{1}};
  cp.track_group(id);

  const auto host = w.tenants[0].vm_hosts[8];
  cp.leave(id, host, 8);
  cp.flush();

  EXPECT_FALSE(w.fabric.hypervisor(host).has_flow(
      w.controller.group(id).address));
  EXPECT_GE(cp.stats().flow_dels, 1u);

  sim::Fabric batch{w.topology};
  batch.install_group(w.controller, id);
  EXPECT_EQ(fabric_state_digest(w.fabric), fabric_state_digest(batch));
}

TEST(ControlPlane, CoalescingCollapsesRepeatedTouchesToOneRule) {
  StreamWorld w;
  const std::vector<std::uint32_t> vms{0, 4, 8};
  const auto id = w.make_group(vms);
  w.fabric.install_group(w.controller, id);

  // Large threshold: nothing flushes while the same host's flow is touched
  // repeatedly; the wire must see only the final state.
  ControlPlane cp{w.controller, w.fabric, ControlPlaneOptions{100000}};
  cp.track_group(id);

  // vms 12..15 live on one host: four joins touch the same flow.
  for (std::uint32_t vm = 12; vm < 16; ++vm) {
    cp.join(id, Member{w.tenants[0].vm_hosts[vm], vm, MemberRole::kReceiver});
  }
  EXPECT_GT(cp.stats().updates_coalesced, 0u);
  cp.flush();

  sim::Fabric batch{w.topology};
  batch.install_group(w.controller, id);
  EXPECT_EQ(fabric_state_digest(w.fabric), fabric_state_digest(batch));
}

TEST(ControlPlane, HostFailEvictsEveryMembershipOnTheHost) {
  StreamWorld w;
  // Host of vms 0..3 carries members of two groups.
  const std::vector<std::uint32_t> g1_vms{0, 1, 8};
  const std::vector<std::uint32_t> g2_vms{2, 12, 16};
  const auto g1 = w.make_group(g1_vms);
  const auto g2 = w.make_group(g2_vms);
  w.fabric.install_group(w.controller, g1);
  w.fabric.install_group(w.controller, g2);

  ControlPlane cp{w.controller, w.fabric, ControlPlaneOptions{1}};
  cp.track_group(g1);
  cp.track_group(g2);

  const auto dead = w.tenants[0].vm_hosts[0];
  const auto evicted = cp.host_fail(dead);
  cp.flush();
  EXPECT_EQ(evicted, 3u);  // vms 0, 1 (g1) and 2 (g2)

  for (const auto id : {g1, g2}) {
    for (const auto& m : w.controller.group(id).members) {
      EXPECT_NE(m.host, dead);
    }
    sim::Fabric batch{w.topology};
    batch.install_group(w.controller, id);
  }
  EXPECT_FALSE(w.fabric.hypervisor(dead).has_flow(
      w.controller.group(g1).address));
  EXPECT_FALSE(w.fabric.hypervisor(dead).has_flow(
      w.controller.group(g2).address));
  EXPECT_EQ(cp.stats().host_fails, 1u);
}

TEST(ControlPlane, InstallLagIsRecordedPerEvent) {
  StreamWorld w;
  const auto id = w.make_group(std::vector<std::uint32_t>{0, 4, 8});
  w.fabric.install_group(w.controller, id);

  ControlPlane cp{w.controller, w.fabric, ControlPlaneOptions{100000}};
  cp.track_group(id);
  cp.join(id, Member{w.tenants[0].vm_hosts[12], 12, MemberRole::kReceiver});
  cp.join(id, Member{w.tenants[0].vm_hosts[16], 16, MemberRole::kReceiver});
  EXPECT_EQ(cp.stats().install_lag_seconds.count(), 0u);  // not flushed yet
  cp.flush();
  EXPECT_EQ(cp.stats().install_lag_seconds.count(), 2u);
  EXPECT_GE(cp.stats().install_lag_seconds.percentile(99), 0.0);
}

TEST(ControlPlane, RejectsZeroFlushThreshold) {
  StreamWorld w;
  EXPECT_THROW(
      (ControlPlane{w.controller, w.fabric, ControlPlaneOptions{0}}),
      std::invalid_argument);
}

// The headline equivalence property, across all three encoders: N streamed
// events with delta installs leave the fabric byte-identical (digest-equal)
// to a fresh world where the FINAL membership is batch-created and
// batch-installed.
class StreamEquivalence : public ::testing::TestWithParam<EncoderKind> {};

TEST_P(StreamEquivalence, StreamedDeltasMatchBatchInstallOfFinalState) {
  const auto kind = GetParam();
  StreamWorld w{kind, 80};

  std::vector<GroupId> ids;
  ids.push_back(w.make_group(std::vector<std::uint32_t>{0, 4, 8, 12}));
  ids.push_back(w.make_group(std::vector<std::uint32_t>{1, 20, 33, 47, 60}));
  ids.push_back(w.make_group(std::vector<std::uint32_t>{2, 6, 70}));
  for (const auto id : ids) w.fabric.install_group(w.controller, id);

  ControlPlane cp{w.controller, w.fabric, ControlPlaneOptions{8}};
  for (const auto id : ids) cp.track_group(id);

  // Drive a few hundred churn events through the plane (the simulator keeps
  // its own membership mirror and checks leave-by-(host, vm) semantics).
  ChurnSimulator churn{w.controller, w.tenants, ids};
  churn.set_driver(&cp);
  util::Rng rng{2024};
  for (int i = 0; i < 400; ++i) churn.step(2, rng);
  cp.flush();

  // Fresh world: batch-create the final membership in a new controller so
  // encodings are computed from scratch, then install directly.
  StreamWorld fresh{kind, 80};
  for (std::size_t gi = 0; gi < ids.size(); ++gi) {
    const auto& members = w.controller.group(ids[gi]).members;
    const auto id = fresh.controller.create_group(0, members);
    fresh.fabric.install_group(fresh.controller, id);
  }

  EXPECT_EQ(fabric_state_digest(w.fabric), fabric_state_digest(fresh.fabric))
      << "streamed world diverged from batch install";
  EXPECT_GT(cp.stats().events, 0u);
  EXPECT_GT(cp.stats().updates_applied, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllEncoders, StreamEquivalence,
                         ::testing::Values(EncoderKind::kElmo,
                                           EncoderKind::kBert,
                                           EncoderKind::kP3fa),
                         [](const auto& info) {
                           switch (info.param) {
                             case EncoderKind::kElmo:
                               return "Elmo";
                             case EncoderKind::kBert:
                               return "Bert";
                             case EncoderKind::kP3fa:
                               return "P3fa";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace elmo::stream
