#include "elmo/encoder.h"

#include <gtest/gtest.h>

#include "testutil.h"
#include "util/rng.h"

namespace elmo {
namespace {

// Property sweep over R and placement-ish randomness: every encoding must
// stay within the header budget for every sender, and coverage must hold.
struct EncoderParam {
  std::size_t redundancy;
  std::size_t budget;
};

class EncoderProperty : public ::testing::TestWithParam<EncoderParam> {};

TEST_P(EncoderProperty, HeadersAlwaysWithinBudget) {
  const topo::ClosTopology t{topo::ClosParams::small_test()};
  util::Rng rng{777};
  EncoderConfig cfg;
  cfg.header_budget_bytes = GetParam().budget;
  cfg.redundancy_limit = GetParam().redundancy;
  const GroupEncoder encoder{t, cfg};
  SRuleSpace space{t, 100};

  for (int trial = 0; trial < 60; ++trial) {
    const auto members =
        test::random_hosts(t, 2 + rng.index(t.num_hosts() / 2), rng);
    const MulticastTree tree{t, members};
    const auto encoding = encoder.encode(tree, &space);

    EXPECT_LE(encoding.spine.p_rules.size(), encoder.hmax_spine());
    EXPECT_LE(encoding.leaf.p_rules.size(), encoder.hmax_leaf());

    // Exact serialized size must respect the budget for every sender.
    for (const auto sender : members) {
      EXPECT_LE(encoder.header_bytes(tree, encoding, sender),
                cfg.header_budget_bytes);
    }
    encoder.release(encoding, tree, space);
  }

  // All reservations returned.
  EXPECT_DOUBLE_EQ(space.leaf_stats().sum(), 0.0);
  EXPECT_DOUBLE_EQ(space.spine_stats().sum(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EncoderProperty,
                         ::testing::Values(EncoderParam{0, 64},
                                           EncoderParam{0, 325},
                                           EncoderParam{6, 325},
                                           EncoderParam{12, 325},
                                           EncoderParam{12, 125}));

TEST(GroupEncoder, CoversEveryTreeSwitch) {
  const topo::ClosTopology t{topo::ClosParams::small_test()};
  util::Rng rng{888};
  const GroupEncoder encoder{t, EncoderConfig{}};
  SRuleSpace space{t, 100};

  const auto members = test::random_hosts(t, 20, rng);
  const MulticastTree tree{t, members};
  const auto encoding = encoder.encode(tree, &space);

  auto covered = [](const LayerEncoding& layer, std::uint32_t id) {
    for (const auto& rule : layer.p_rules) {
      for (const auto rid : rule.switch_ids) {
        if (rid == id) return true;
      }
    }
    for (const auto& [sid, bm] : layer.s_rules) {
      if (sid == id) return true;
    }
    return layer.default_rule.has_value();
  };

  for (const auto& leaf : tree.leaves()) {
    EXPECT_TRUE(covered(encoding.leaf, leaf.leaf));
  }
  for (const auto& pod : tree.pods()) {
    EXPECT_TRUE(covered(encoding.spine, pod.pod));
  }
}

TEST(GroupEncoder, NoSpaceMeansDefaultRulesNotSRules) {
  const topo::ClosTopology t{topo::ClosParams::small_test()};
  util::Rng rng{999};
  EncoderConfig cfg;
  cfg.hmax_leaf_override = 1;
  cfg.hmax_spine = 1;
  const GroupEncoder encoder{t, cfg};

  const auto members = test::random_hosts(t, 30, rng);
  const MulticastTree tree{t, members};
  const auto encoding = encoder.encode(tree, /*space=*/nullptr);
  EXPECT_TRUE(encoding.leaf.s_rules.empty());
  EXPECT_TRUE(encoding.spine.s_rules.empty());
  // 30 hosts over 16 leaves cannot fit one p-rule with kmax 2.
  EXPECT_TRUE(encoding.uses_default());
}

TEST(GroupEncoder, SRuleCapacityZeroBehavesLikeNoSpace) {
  const topo::ClosTopology t{topo::ClosParams::small_test()};
  util::Rng rng{1001};
  EncoderConfig cfg;
  cfg.hmax_leaf_override = 1;
  cfg.srule_capacity = 0;
  const GroupEncoder encoder{t, cfg};
  SRuleSpace space{t, cfg.srule_capacity};

  const auto members = test::random_hosts(t, 30, rng);
  const MulticastTree tree{t, members};
  const auto encoding = encoder.encode(tree, &space);
  EXPECT_TRUE(encoding.leaf.s_rules.empty());
  EXPECT_TRUE(encoding.uses_default());
}

TEST(GroupEncoder, SmallGroupNeedsNoSRulesOrDefaults) {
  const topo::ClosTopology t{topo::ClosParams::small_test()};
  const GroupEncoder encoder{t, EncoderConfig{}};
  SRuleSpace space{t, 100};
  const std::vector<topo::HostId> members{0, 1, 5};
  const MulticastTree tree{t, members};
  const auto encoding = encoder.encode(tree, &space);
  EXPECT_EQ(encoding.s_rule_count(), 0u);
  EXPECT_FALSE(encoding.uses_default());
  EXPECT_GT(encoding.p_rule_count(), 0u);
}

TEST(GroupEncoder, HigherRNeverIncreasesPRuleCount) {
  const topo::ClosTopology t{topo::ClosParams::small_test()};
  util::Rng rng{1003};
  for (int trial = 0; trial < 20; ++trial) {
    const auto members = test::random_hosts(t, 24, rng);
    const MulticastTree tree{t, members};

    std::size_t prev_rules = ~0u;
    for (const std::size_t r : {0u, 4u, 12u}) {
      EncoderConfig cfg;
      cfg.redundancy_limit = r;
      const GroupEncoder encoder{t, cfg};
      const auto encoding = encoder.encode(tree, nullptr);
      const auto rules = encoding.leaf.p_rules.size();
      EXPECT_LE(rules, prev_rules)
          << "R=" << r << " used more leaf p-rules than a smaller R";
      prev_rules = rules;
    }
  }
}

TEST(GroupEncoder, HeaderBytesTrackGroupSpread) {
  const topo::ClosTopology t{topo::ClosParams::small_test()};
  const GroupEncoder encoder{t, EncoderConfig{}};
  const std::vector<topo::HostId> tight{0, 1, 2};        // one rack
  const std::vector<topo::HostId> spread{0, 8, 16, 24, 32, 40, 48, 56};
  const MulticastTree tight_tree{t, tight};
  const MulticastTree spread_tree{t, spread};
  const auto tight_enc = encoder.encode(tight_tree, nullptr);
  const auto spread_enc = encoder.encode(spread_tree, nullptr);
  EXPECT_LT(encoder.header_bytes(tight_tree, tight_enc, 0),
            encoder.header_bytes(spread_tree, spread_enc, 0));
}

}  // namespace
}  // namespace elmo
