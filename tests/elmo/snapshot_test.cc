#include "elmo/snapshot.h"

#include <gtest/gtest.h>

#include "testutil.h"
#include "util/rng.h"

namespace elmo {
namespace {

topo::ClosTopology small() {
  return topo::ClosTopology{topo::ClosParams::small_test()};
}

// Builds a controller with groups, churn, and a removed group (tombstone).
std::unique_ptr<Controller> populated(const topo::ClosTopology& t) {
  auto controller = std::make_unique<Controller>(t, EncoderConfig{});
  util::Rng rng{12};
  std::vector<GroupId> ids;
  for (int g = 0; g < 12; ++g) {
    const auto hosts = test::random_hosts(t, 3 + rng.index(10), rng);
    std::vector<Member> members;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      members.push_back(Member{hosts[i], static_cast<std::uint32_t>(i),
                               static_cast<MemberRole>(rng.index(3))});
    }
    ids.push_back(controller->create_group(g % 3, members));
  }
  controller->remove_group(ids[4]);
  controller->remove_group(ids[9]);
  controller->join(ids[1], Member{60, 99, MemberRole::kReceiver});
  return controller;
}

TEST(Snapshot, RestoreReproducesGroupsExactly) {
  const auto t = small();
  const auto original = populated(t);
  const auto image = snapshot(*original);

  Controller restored{t, EncoderConfig{}};
  restore(restored, image);

  EXPECT_EQ(restored.num_groups(), original->num_groups());
  for (GroupId id = 0; id < 12; ++id) {
    ASSERT_EQ(restored.has_group(id), original->has_group(id)) << id;
    if (!original->has_group(id)) continue;
    const auto& a = original->group(id);
    const auto& b = restored.group(id);
    EXPECT_EQ(a.tenant, b.tenant);
    EXPECT_EQ(a.address, b.address);
    ASSERT_EQ(a.members.size(), b.members.size());
    for (std::size_t m = 0; m < a.members.size(); ++m) {
      EXPECT_EQ(a.members[m].host, b.members[m].host);
      EXPECT_EQ(a.members[m].vm, b.members[m].vm);
      EXPECT_EQ(a.members[m].role, b.members[m].role);
    }
    // Derived state identical too: encodings and issued headers.
    EXPECT_EQ(a.encoding, b.encoding);
    for (const auto& m : a.members) {
      if (!can_send(m.role)) continue;
      EXPECT_EQ(original->header_for(id, m.host),
                restored.header_for(id, m.host));
    }
  }
  // Fabric-wide s-rule accounting matches.
  EXPECT_DOUBLE_EQ(restored.srule_space().leaf_stats().sum(),
                   original->srule_space().leaf_stats().sum());
}

TEST(Snapshot, RoundTripIsStable) {
  const auto t = small();
  const auto original = populated(t);
  const auto image = snapshot(*original);
  Controller restored{t, EncoderConfig{}};
  restore(restored, image);
  EXPECT_EQ(snapshot(restored), image);
}

TEST(Snapshot, RestoredControllerContinuesOperating) {
  const auto t = small();
  const auto original = populated(t);
  const auto image = snapshot(*original);
  Controller restored{t, EncoderConfig{}};
  restore(restored, image);

  // New lifecycle operations pick up where the original left off: the next
  // group id continues the sequence.
  const auto next = restored.create_group(0, {});
  EXPECT_EQ(next, 12u);
  restored.join(next, Member{0, 0, MemberRole::kBoth});
  EXPECT_EQ(restored.group(next).members.size(), 1u);
}

TEST(Snapshot, RejectsCorruptImages) {
  const auto t = small();
  const auto original = populated(t);
  auto image = snapshot(*original);

  {
    Controller c{t, EncoderConfig{}};
    auto bad = image;
    bad[0] ^= 0xff;  // magic
    EXPECT_THROW(restore(c, bad), std::invalid_argument);
  }
  {
    Controller c{t, EncoderConfig{}};
    auto bad = image;
    bad[5] ^= 0xff;  // version
    EXPECT_THROW(restore(c, bad), std::invalid_argument);
  }
  {
    Controller c{t, EncoderConfig{}};
    auto bad = image;
    bad.resize(bad.size() / 2);  // truncated
    EXPECT_THROW(restore(c, bad), std::invalid_argument);
  }
  {
    Controller c{t, EncoderConfig{}};
    auto bad = image;
    bad.push_back(0);  // trailing garbage
    EXPECT_THROW(restore(c, bad), std::invalid_argument);
  }
}

TEST(Snapshot, RefusesNonEmptyController) {
  const auto t = small();
  const auto original = populated(t);
  const auto image = snapshot(*original);
  Controller busy{t, EncoderConfig{}};
  busy.create_group(0, {});
  EXPECT_THROW(restore(busy, image), std::logic_error);
}

TEST(Snapshot, EmptyControllerRoundTrips) {
  const auto t = small();
  Controller empty{t, EncoderConfig{}};
  const auto image = snapshot(empty);
  Controller restored{t, EncoderConfig{}};
  restore(restored, image);
  EXPECT_EQ(restored.num_groups(), 0u);
}

}  // namespace
}  // namespace elmo
