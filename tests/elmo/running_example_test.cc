// End-to-end checks against the paper's running example (§3.1, Figure 3):
// the 4-pod / 2-spine / 2-leaf / 2-host Clos with the 6-member group
// {Ha, Hb, Hk, Hm, Hn, Hp}, under the design points D1-D5.
#include <gtest/gtest.h>

#include "elmo/encoder.h"
#include "elmo/evaluator.h"

namespace elmo {
namespace {

const std::vector<topo::HostId> kMembers{0, 1, 10, 12, 13, 15};

class RunningExample : public ::testing::Test {
 protected:
  RunningExample()
      : topo_{topo::ClosParams::running_example()}, tree_{topo_, kMembers} {}

  GroupEncoding encode(std::size_t r, std::size_t srule_capacity) {
    EncoderConfig cfg;
    cfg.redundancy_limit = r;
    cfg.hmax_spine = 2;
    cfg.hmax_leaf_override = 2;  // the figure's budget: two rules per layer
    cfg.kmax = 2;                // "max two switches per p-rule"
    cfg.kmax_spine = 2;
    const GroupEncoder encoder{topo_, cfg};
    space_ = std::make_unique<SRuleSpace>(topo_, srule_capacity);
    return encoder.encode(tree_, space_.get());
  }

  topo::ClosTopology topo_;
  MulticastTree tree_;
  std::unique_ptr<SRuleSpace> space_;
};

TEST_F(RunningExample, R0NoSRules_UsesDefaultPRule) {
  // Figure 3a, left column: R=0, #s-rules=0 -> p-rules for two switches per
  // layer, the third mapped to the default p-rule.
  const auto enc = encode(0, 0);
  EXPECT_EQ(enc.spine.p_rules.size(), 2u);
  EXPECT_TRUE(enc.spine.s_rules.empty());
  ASSERT_TRUE(enc.spine.default_rule);
  // Default covers P3 = "11".
  EXPECT_EQ(enc.spine.default_rule->to_string(), "11");

  EXPECT_EQ(enc.leaf.p_rules.size(), 2u);
  ASSERT_TRUE(enc.leaf.default_rule);
  // At R=0, identical bitmaps share: {L0,L6}="11" is one rule; L5 and L7
  // have distinct bitmaps so one of them overflows into the default "01"
  // or "10".
  bool found_shared = false;
  for (const auto& rule : enc.leaf.p_rules) {
    if (rule.switch_ids.size() == 2) {
      EXPECT_EQ(rule.bitmap.to_string(), "11");
      EXPECT_EQ(rule.switch_ids, (std::vector<std::uint32_t>{0, 6}));
      found_shared = true;
    }
  }
  EXPECT_TRUE(found_shared);
}

TEST_F(RunningExample, R0WithSRules_MovesOverflowToGroupTables) {
  // Figure 3a, middle column: R=0, one s-rule slot per switch.
  const auto enc = encode(0, 1);
  EXPECT_EQ(enc.spine.p_rules.size(), 2u);
  EXPECT_EQ(enc.spine.s_rules.size(), 1u);
  EXPECT_FALSE(enc.spine.default_rule);
  EXPECT_EQ(enc.spine.s_rules[0].first, 3u);  // P3
  EXPECT_EQ(enc.spine.s_rules[0].second.to_string(), "11");

  EXPECT_EQ(enc.leaf.p_rules.size(), 2u);
  EXPECT_EQ(enc.leaf.s_rules.size(), 1u);
  EXPECT_FALSE(enc.leaf.default_rule);
}

TEST_F(RunningExample, R2_SharesBitmapsAcrossSwitches) {
  // Figure 3a, right column: R=2 -> everything fits in two rules per layer,
  // no s-rules, no default.
  const auto enc = encode(2, 0);
  EXPECT_EQ(enc.spine.p_rules.size(), 2u);
  EXPECT_TRUE(enc.spine.s_rules.empty());
  EXPECT_FALSE(enc.spine.default_rule);
  EXPECT_EQ(enc.leaf.p_rules.size(), 2u);
  EXPECT_TRUE(enc.leaf.s_rules.empty());
  EXPECT_FALSE(enc.leaf.default_rule);

  // All six switches covered: 3 pods across the spine rules, 4 leaves
  // across the leaf rules.
  std::size_t spine_ids = 0;
  for (const auto& rule : enc.spine.p_rules) spine_ids += rule.switch_ids.size();
  EXPECT_EQ(spine_ids, 3u);
  std::size_t leaf_ids = 0;
  for (const auto& rule : enc.leaf.p_rules) leaf_ids += rule.switch_ids.size();
  EXPECT_EQ(leaf_ids, 4u);
}

TEST_F(RunningExample, AllVariantsDeliverExactlyOnceFromEverySender) {
  const TrafficEvaluator evaluator{topo_};
  for (const auto& [r, srules] :
       std::vector<std::pair<std::size_t, std::size_t>>{{0, 0}, {0, 1}, {2, 0}}) {
    const auto enc = encode(r, srules);
    for (const auto sender : kMembers) {
      for (std::uint64_t hash : {0ull, 1ull}) {
        const auto report = evaluator.evaluate(tree_, enc, sender, 100, hash);
        EXPECT_TRUE(report.delivery.exactly_once())
            << "R=" << r << " srules=" << srules << " sender=" << sender;
      }
    }
  }
}

TEST_F(RunningExample, DesignProgressionShrinksHeaders) {
  // D1 (naive): one rule per physical tree switch, each with a switch id and
  // full-size bitmap — the paper counts 161 bits for this example. Our
  // format's logical-topology encoding (D2) plus bitmap sharing (D3) must
  // come in far below the equivalent naive encoding.
  const auto naive_bits = [&] {
    // Physical tree of sender Ha: L0 + S0,S1 + 4 cores + S4..S7 spines of
    // P2/P3 + L5,L6,L7 -> count ids and per-layer port bitmaps.
    const unsigned core_id_bits = 2, spine_id_bits = 3, leaf_id_bits = 3;
    const unsigned leaf_ports = 4, spine_ports = 4, core_ports = 4;
    std::size_t bits = 0;
    bits += 4 * (leaf_id_bits + leaf_ports);    // L0, L5, L6, L7
    bits += 6 * (spine_id_bits + spine_ports);  // S0,S1 + two pods x2
    bits += 4 * (core_id_bits + core_ports);    // C0..C3
    return bits;
  }();
  EXPECT_GE(naive_bits, 90u);  // the naive encoding is large (paper: 161b
                               // with its per-rule framing fields)

  const auto enc = encode(2, 0);
  EncoderConfig cfg;
  cfg.hmax_spine = 2;
  cfg.hmax_leaf_override = 2;
  const GroupEncoder encoder{topo_, cfg};
  const auto header_bytes = encoder.header_bytes(tree_, enc, /*Ha=*/0);
  EXPECT_LT(header_bytes * 8, naive_bits);
  EXPECT_LE(header_bytes, 16u);  // compact: tens of bits, not hundreds
}

TEST_F(RunningExample, SRuleReservationsLandOnAllPodSpines) {
  const auto enc = encode(0, 1);
  ASSERT_EQ(enc.spine.s_rules.size(), 1u);
  const auto pod = enc.spine.s_rules[0].first;
  for (std::size_t plane = 0; plane < topo_.params().spines_per_pod; ++plane) {
    EXPECT_EQ(space_->spine_occupancy(topo_.spine_at(pod, plane)), 1u);
  }
}

}  // namespace
}  // namespace elmo
