// Edge cases and cross-cutting properties that do not belong to a single
// module's suite.
#include <gtest/gtest.h>

#include <bitset>
#include <set>

#include "cloud/cloud.h"
#include "elmo/encoder.h"
#include "elmo/evaluator.h"
#include "net/bitmap.h"
#include "testutil.h"
#include "util/rng.h"

namespace elmo {
namespace {

// --- PortBitmap vs std::bitset reference ------------------------------------

TEST(PortBitmapReference, MatchesStdBitsetAcrossWordBoundaries) {
  constexpr std::size_t kPorts = 130;  // spans three 64-bit words
  util::Rng rng{2718};
  for (int trial = 0; trial < 200; ++trial) {
    net::PortBitmap a{kPorts};
    net::PortBitmap b{kPorts};
    std::bitset<kPorts> ra;
    std::bitset<kPorts> rb;
    for (int i = 0; i < 40; ++i) {
      const auto pa = rng.index(kPorts);
      const auto pb = rng.index(kPorts);
      a.set(pa);
      ra.set(pa);
      b.set(pb);
      rb.set(pb);
    }
    EXPECT_EQ(a.popcount(), ra.count());
    EXPECT_EQ((a | b).popcount(), (ra | rb).count());
    EXPECT_EQ((a & b).popcount(), (ra & rb).count());
    EXPECT_EQ(a.hamming_distance(b), (ra ^ rb).count());
    EXPECT_EQ(a.is_subset_of(b), (ra & ~rb).none());
    std::size_t iterated = 0;
    a.for_each_set([&](std::size_t p) {
      EXPECT_TRUE(ra.test(p));
      ++iterated;
    });
    EXPECT_EQ(iterated, ra.count());
  }
}

// --- clustering degenerate limits -------------------------------------------

TEST(ClusteringEdge, HmaxZeroSpillsEverything) {
  const std::vector<LayerInput> inputs{{0, [] {
                                          net::PortBitmap b{8};
                                          b.set(1);
                                          return b;
                                        }()}};
  ClusteringLimits limits;
  limits.hmax = 0;
  const auto out =
      cluster_layer(inputs, limits, [](std::uint32_t) { return true; });
  EXPECT_TRUE(out.p_rules.empty());
  EXPECT_EQ(out.s_rules.size(), 1u);
}

TEST(ClusteringEdge, SingleSwitchSingleRule) {
  net::PortBitmap b{48};
  b.set(7);
  const std::vector<LayerInput> inputs{{42, b}};
  const auto out = cluster_layer(inputs, ClusteringLimits{}, {});
  ASSERT_EQ(out.p_rules.size(), 1u);
  EXPECT_EQ(out.p_rules[0].switch_ids, std::vector<std::uint32_t>{42});
  EXPECT_EQ(out.p_rules[0].bitmap, b);
}

// --- empty and single-member groups ------------------------------------------

TEST(GroupEdge, EmptyGroupEncodesToNothing) {
  const topo::ClosTopology t{topo::ClosParams::small_test()};
  const MulticastTree tree{t, std::vector<topo::HostId>{}};
  EXPECT_EQ(tree.num_members(), 0u);
  const GroupEncoder encoder{t, EncoderConfig{}};
  const auto enc = encoder.encode(tree, nullptr);
  EXPECT_EQ(enc.p_rule_count(), 0u);
  EXPECT_EQ(enc.s_rule_count(), 0u);

  // A sender into an empty group generates exactly one wasted hop
  // (host -> leaf), nothing more.
  const TrafficEvaluator evaluator{t};
  const auto report = evaluator.evaluate(tree, enc, 0, 100);
  EXPECT_EQ(report.delivery.members_expected, 0u);
  EXPECT_EQ(report.elmo_link_transmissions, 1u);
}

TEST(GroupEdge, SelfOnlyGroupDeliversNothing) {
  const topo::ClosTopology t{topo::ClosParams::small_test()};
  const std::vector<topo::HostId> members{5};
  const MulticastTree tree{t, members};
  const GroupEncoder encoder{t, EncoderConfig{}};
  const auto enc = encoder.encode(tree, nullptr);
  const TrafficEvaluator evaluator{t};
  const auto report = evaluator.evaluate(tree, enc, 5, 100);
  EXPECT_EQ(report.delivery.members_expected, 0u);
  EXPECT_TRUE(report.delivery.exactly_once());
  EXPECT_EQ(report.delivery.spurious_deliveries, 0u);
}

TEST(GroupEdge, FullFabricBroadcastGroup) {
  // Every host in a small fabric joins one group: the encoding must still
  // deliver exactly-once everywhere (this exercises default/s-rule paths
  // and the densest bitmaps possible).
  const topo::ClosTopology t{topo::ClosParams::small_test()};
  std::vector<topo::HostId> everyone(t.num_hosts());
  for (topo::HostId h = 0; h < t.num_hosts(); ++h) everyone[h] = h;
  const MulticastTree tree{t, everyone};
  EXPECT_EQ(tree.num_leaves(), t.num_leaves());

  for (const std::size_t r : {0u, 12u}) {
    EncoderConfig cfg;
    cfg.redundancy_limit = r;
    const GroupEncoder encoder{t, cfg};
    SRuleSpace space{t, 1000};
    const auto enc = encoder.encode(tree, &space);
    const TrafficEvaluator evaluator{t};
    const auto report = evaluator.evaluate(tree, enc, 0, 1500);
    EXPECT_TRUE(report.delivery.exactly_once()) << "R=" << r;
    EXPECT_EQ(report.delivery.members_expected, t.num_hosts() - 1);
    encoder.release(enc, tree, space);
  }
}

// --- placement locality property ---------------------------------------------

TEST(PlacementProperty, TenantsStayPodLocalWhenTheyFit) {
  const topo::ClosTopology t{topo::ClosParams::small_test()};
  util::Rng rng{31};
  cloud::CloudParams params = cloud::CloudParams::small_test();
  params.tenants = 15;
  params.colocation = 4;
  const cloud::Cloud cloud{t, params, rng};

  const std::size_t per_pod_capacity =
      t.params().leaves_per_pod * params.colocation;
  for (const auto& tenant : cloud.tenants()) {
    std::set<topo::PodId> pods;
    for (const auto host : tenant.vm_hosts) pods.insert(t.pod_of_host(host));
    // Pod-filling placement: a tenant uses at most
    // ceil(size / per-pod-quota) pods plus one for fragmentation.
    const std::size_t bound =
        (tenant.size() + per_pod_capacity - 1) / per_pod_capacity + 1;
    EXPECT_LE(pods.size(), bound) << "tenant " << tenant.id;
  }
}

// --- encode is a pure function of membership ----------------------------------

TEST(HeaderProperty, EncodingIsDeterministic) {
  const topo::ClosTopology t{topo::ClosParams::small_test()};
  const GroupEncoder encoder{t, EncoderConfig{}};
  util::Rng rng{88};
  for (int trial = 0; trial < 30; ++trial) {
    const auto hosts = test::random_hosts(t, 4 + rng.index(20), rng);
    const MulticastTree tree_a{t, hosts};
    const MulticastTree tree_b{t, hosts};
    const auto enc_a = encoder.encode(tree_a, nullptr);
    const auto enc_b = encoder.encode(tree_b, nullptr);
    EXPECT_EQ(enc_a, enc_b);
    for (const auto sender : hosts) {
      EXPECT_EQ(encoder.codec().serialize(tree_a.sender_encoding(sender),
                                          enc_a),
                encoder.codec().serialize(tree_b.sender_encoding(sender),
                                          enc_b));
    }
  }
}

}  // namespace
}  // namespace elmo
