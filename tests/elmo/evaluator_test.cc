#include "elmo/evaluator.h"

#include <gtest/gtest.h>

#include "testutil.h"
#include "util/rng.h"

namespace elmo {
namespace {

topo::ClosTopology small() {
  return topo::ClosTopology{topo::ClosParams::small_test()};
}

TEST(IdealTransmissions, SingleRack) {
  const auto t = small();
  const MulticastTree tree{t, std::vector<topo::HostId>{0, 1, 2}};
  // host->leaf + 2 deliveries (sender is a member).
  EXPECT_EQ(TrafficEvaluator::ideal_transmissions(tree, 0), 3u);
}

TEST(IdealTransmissions, TwoRacksSamePod) {
  const auto t = small();
  // hosts 0 (leaf 0) and 4 (leaf 1), same pod.
  const MulticastTree tree{t, std::vector<topo::HostId>{0, 4}};
  // host->leaf, leaf->spine, spine->leaf1, leaf1->host = 4.
  EXPECT_EQ(TrafficEvaluator::ideal_transmissions(tree, 0), 4u);
}

TEST(IdealTransmissions, CrossPod) {
  const auto t = small();
  // host 0 (pod 0) and host 16 (leaf 4, pod 1).
  const MulticastTree tree{t, std::vector<topo::HostId>{0, 16}};
  // host->leaf, leaf->spine, spine->core, core->spine, spine->leaf,
  // leaf->host = 6.
  EXPECT_EQ(TrafficEvaluator::ideal_transmissions(tree, 0), 6u);
}

TEST(IdealTransmissions, NonMemberSender) {
  const auto t = small();
  const MulticastTree tree{t, std::vector<topo::HostId>{4, 5}};  // leaf 1
  // host0->leaf0, leaf0->spine, spine->leaf1, 2 deliveries = 5.
  EXPECT_EQ(TrafficEvaluator::ideal_transmissions(tree, 0), 5u);
}

class EvaluatorProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EvaluatorProperty, ExactlyOnceDeliveryAndSaneOverhead) {
  const auto t = small();
  const TrafficEvaluator evaluator{t};
  util::Rng rng{GetParam()};
  EncoderConfig cfg;
  cfg.redundancy_limit = GetParam() % 13;
  const GroupEncoder encoder{t, cfg};
  SRuleSpace space{t, 1000};

  for (int trial = 0; trial < 80; ++trial) {
    const auto members =
        test::random_hosts(t, 2 + rng.index(40), rng);
    const MulticastTree tree{t, members};
    const auto encoding = encoder.encode(tree, &space);
    const auto sender = members[rng.index(members.size())];

    const auto report =
        evaluator.evaluate(tree, encoding, sender, 1500, rng());
    EXPECT_TRUE(report.delivery.exactly_once())
        << "reached " << report.delivery.members_reached << "/"
        << report.delivery.members_expected << " dups "
        << report.delivery.duplicate_deliveries;
    EXPECT_GE(report.overhead_ratio(), 1.0);
    EXPECT_GE(report.elmo_link_transmissions,
              report.ideal_link_transmissions);
    EXPECT_GT(report.header_bytes_at_source, 0u);
    encoder.release(encoding, tree, space);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluatorProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Evaluator, RZeroWithAmpleSRulesIsIdealTraffic) {
  // Paper §5.1.2: "With R = 0 and sufficient s-rule capacity, the resulting
  // traffic overhead is identical to ideal multicast" (up to header bytes).
  const auto t = small();
  const TrafficEvaluator evaluator{t};
  util::Rng rng{42};
  EncoderConfig cfg;
  cfg.redundancy_limit = 0;
  const GroupEncoder encoder{t, cfg};
  SRuleSpace space{t, 100000};

  for (int trial = 0; trial < 40; ++trial) {
    const auto members = test::random_hosts(t, 2 + rng.index(50), rng);
    const MulticastTree tree{t, members};
    const auto encoding = encoder.encode(tree, &space);
    const auto report = evaluator.evaluate(tree, encoding, members[0], 1500);
    // Same transmissions as the ideal tree: no spurious copies at R=0.
    EXPECT_EQ(report.elmo_link_transmissions,
              report.ideal_link_transmissions);
    EXPECT_EQ(report.delivery.spurious_deliveries, 0u);
    encoder.release(encoding, tree, space);
  }
}

TEST(Evaluator, HeaderOverheadShrinksWithLargerPayload) {
  const auto t = small();
  const TrafficEvaluator evaluator{t};
  util::Rng rng{77};
  const GroupEncoder encoder{t, EncoderConfig{}};
  const auto members = test::random_hosts(t, 24, rng);
  const MulticastTree tree{t, members};
  const auto encoding = encoder.encode(tree, nullptr);

  const auto small_pkt = evaluator.evaluate(tree, encoding, members[0], 64);
  const auto large_pkt = evaluator.evaluate(tree, encoding, members[0], 1500);
  EXPECT_GT(small_pkt.overhead_ratio(), large_pkt.overhead_ratio());
}

TEST(Evaluator, DefaultRulesCauseSpuriousDeliveriesButReachEveryone) {
  const auto t = small();
  const TrafficEvaluator evaluator{t};
  util::Rng rng{99};
  EncoderConfig cfg;
  cfg.hmax_leaf_override = 1;
  cfg.hmax_spine = 1;
  const GroupEncoder encoder{t, cfg};

  const auto members = test::random_hosts(t, 30, rng);
  const MulticastTree tree{t, members};
  const auto encoding = encoder.encode(tree, /*space=*/nullptr);
  ASSERT_TRUE(encoding.uses_default());

  const auto report = evaluator.evaluate(tree, encoding, members[0], 64);
  EXPECT_EQ(report.delivery.members_reached,
            report.delivery.members_expected);
  EXPECT_GT(report.delivery.spurious_deliveries, 0u);
  EXPECT_GT(report.overhead_ratio(), 1.0);
}

TEST(Evaluator, MultipathHashSelectsDifferentPlanes) {
  const auto t = small();
  const TrafficEvaluator evaluator{t};
  const std::vector<topo::HostId> members{0, 16};
  const MulticastTree tree{t, members};
  const GroupEncoder encoder{t, EncoderConfig{}};
  const auto encoding = encoder.encode(tree, nullptr);

  // Different flow hashes must still deliver exactly once.
  for (std::uint64_t hash = 0; hash < 8; ++hash) {
    const auto report = evaluator.evaluate(tree, encoding, 0, 100, hash);
    EXPECT_TRUE(report.delivery.exactly_once());
  }
}

TEST(Evaluator, SpineFailureWithStaleEncodingLosesTraffic) {
  const auto t = small();
  const TrafficEvaluator evaluator{t};
  const std::vector<topo::HostId> members{0, 16};
  const MulticastTree tree{t, members};
  const GroupEncoder encoder{t, EncoderConfig{}};
  const auto encoding = encoder.encode(tree, nullptr);

  // Hash 0 picks plane 0; failing that spine with multipath still on (the
  // transient window before the controller reacts) loses the packet.
  topo::FailureSet failures;
  failures.fail_spine(t.spine_at(0, 0));
  // Build a route with NO failures (stale multipath header), then walk it
  // under failures: evaluate() computes the route from `failures`, so model
  // the stale header by an empty failure set on route and a failed fabric.
  // evaluate() already takes failures for the walk; verify recovery path:
  const auto recovered =
      evaluator.evaluate(tree, encoding, 0, 100, 0, &failures);
  // With failures passed, the route avoids the dead spine: delivery intact.
  EXPECT_TRUE(recovered.delivery.exactly_once());
}

}  // namespace
}  // namespace elmo
