// The determinism contract (DESIGN.md §5): every parallel path — cloud
// placement, workload generation, bulk group encoding — must produce output
// bit-identical to its serial execution at any thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "cloud/cloud.h"
#include "elmo/controller.h"
#include "topology/clos.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace elmo {
namespace {

constexpr std::uint64_t kSeed = 20190814;  // SIGCOMM'19 presentation day

topo::ClosTopology small_fabric() {
  return topo::ClosTopology{topo::ClosParams::two_tier_leaf_spine()};
}

cloud::CloudParams cloud_params(std::size_t colocation) {
  cloud::CloudParams p;
  p.tenants = 60;
  p.min_vms_per_tenant = 5;
  p.max_vms_per_tenant = 80;
  p.mean_vms_per_tenant = 16.0;
  p.colocation = colocation;
  return p;
}

struct Built {
  std::vector<std::vector<topo::HostId>> tenant_hosts;
  std::vector<cloud::Group> groups;
};

Built build(const topo::ClosTopology& topology, std::size_t colocation,
            cloud::GroupSizeDist dist, util::ThreadPool* pool) {
  util::Rng rng{kSeed};
  const cloud::Cloud cloud{topology, cloud_params(colocation), rng, pool};
  cloud::WorkloadParams wp;
  wp.total_groups = 2000;
  wp.size_dist = dist;
  wp.min_group_size = 3;
  const cloud::GroupWorkload workload{cloud, wp, rng, pool};

  Built out;
  for (const auto& tenant : cloud.tenants()) {
    out.tenant_hosts.push_back(tenant.vm_hosts);
  }
  out.groups.assign(workload.groups().begin(), workload.groups().end());
  return out;
}

void expect_identical(const Built& a, const Built& b, const char* what) {
  ASSERT_EQ(a.tenant_hosts, b.tenant_hosts) << what << ": placement differs";
  ASSERT_EQ(a.groups.size(), b.groups.size()) << what;
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    ASSERT_EQ(a.groups[g].tenant, b.groups[g].tenant) << what << " g" << g;
    ASSERT_EQ(a.groups[g].member_hosts, b.groups[g].member_hosts)
        << what << " g" << g;
    ASSERT_EQ(a.groups[g].member_vms, b.groups[g].member_vms)
        << what << " g" << g;
  }
}

class ParallelDeterminism
    : public ::testing::TestWithParam<std::tuple<std::size_t,
                                                 cloud::GroupSizeDist>> {};

TEST_P(ParallelDeterminism, CloudAndWorkloadMatchSerialAt4And8Threads) {
  const auto [colocation, dist] = GetParam();
  const auto topology = small_fabric();
  const auto serial = build(topology, colocation, dist, nullptr);
  for (const std::size_t threads : {1u, 4u, 8u}) {
    util::ThreadPool pool{threads};
    const auto parallel = build(topology, colocation, dist, &pool);
    expect_identical(serial, parallel,
                     (std::to_string(threads) + " threads").c_str());
  }
}

std::vector<std::vector<Member>> member_lists(const Built& built) {
  std::vector<std::vector<Member>> lists(built.groups.size());
  for (std::size_t gi = 0; gi < built.groups.size(); ++gi) {
    const auto& g = built.groups[gi];
    auto rng = util::Rng::stream(kSeed + 1, gi);
    for (std::size_t i = 0; i < g.size(); ++i) {
      lists[gi].push_back(Member{g.member_hosts[i], g.member_vms[i],
                                 static_cast<MemberRole>(rng.index(3))});
    }
  }
  return lists;
}

void expect_bulk_load_identical(const topo::ClosTopology& topology,
                                const EncoderConfig& config,
                                const Built& built) {
  const auto lists = member_lists(built);
  std::vector<Controller::GroupSpec> specs(lists.size());
  for (std::size_t gi = 0; gi < lists.size(); ++gi) {
    specs[gi] = {built.groups[gi].tenant, lists[gi]};
  }

  Controller serial{topology, config};
  const auto serial_ids = serial.create_groups(specs);

  for (const std::size_t threads : {1u, 4u, 8u}) {
    util::ThreadPool pool{threads};
    Controller parallel{topology, config};
    Controller::BulkLoadStats stats;
    const auto ids = parallel.create_groups(specs, &pool, &stats);
    ASSERT_EQ(ids.size(), serial_ids.size());
    EXPECT_EQ(stats.groups, specs.size());
    EXPECT_EQ(stats.speculative_commits + stats.serial_reencodes,
              specs.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ASSERT_TRUE(parallel.group(ids[i]).encoding ==
                  serial.group(serial_ids[i]).encoding)
          << threads << " threads, group " << i;
    }
    const auto par_occ = parallel.srule_space().leaf_occupancies();
    const auto ser_occ = serial.srule_space().leaf_occupancies();
    ASSERT_TRUE(std::equal(par_occ.begin(), par_occ.end(), ser_occ.begin(),
                           ser_occ.end()))
        << threads << " threads: leaf occupancies differ";
  }
}

TEST_P(ParallelDeterminism, BulkEncodingMatchesSerialAt4And8Threads) {
  const auto [colocation, dist] = GetParam();
  const auto topology = small_fabric();
  const auto built = build(topology, colocation, dist, nullptr);
  expect_bulk_load_identical(topology, EncoderConfig{}, built);
}

TEST_P(ParallelDeterminism, BulkEncodingMatchesSerialUnderTightFmax) {
  // A small finite s-rule capacity forces speculative denials and
  // reservation conflicts, exercising the merge pass's serial re-encode
  // fallback — the hard half of the determinism argument.
  const auto [colocation, dist] = GetParam();
  const auto topology = small_fabric();
  const auto built = build(topology, colocation, dist, nullptr);
  EncoderConfig config;
  config.hmax_leaf_override = 2;  // tiny header: most groups want s-rules
  config.srule_capacity = 8;
  expect_bulk_load_identical(topology, config, built);
}

INSTANTIATE_TEST_SUITE_P(
    Placements, ParallelDeterminism,
    ::testing::Combine(::testing::Values(1u, 12u),  // P = colocation
                       ::testing::Values(cloud::GroupSizeDist::kWve,
                                         cloud::GroupSizeDist::kUniform)),
    [](const auto& info) {
      return "P" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == cloud::GroupSizeDist::kWve
                  ? "_Wve"
                  : "_Uniform");
    });

TEST(ParallelDeterminismStats, TightFmaxActuallyExercisesTheFallback) {
  // Sanity-check the tight-Fmax parameterization: with 8-entry tables and
  // 8 threads at least one group must take the serial re-encode path,
  // otherwise the suite above is not testing the merge fallback at all.
  const auto topology = small_fabric();
  const auto built =
      build(topology, 1, cloud::GroupSizeDist::kWve, nullptr);
  const auto lists = member_lists(built);
  std::vector<Controller::GroupSpec> specs(lists.size());
  for (std::size_t gi = 0; gi < lists.size(); ++gi) {
    specs[gi] = {built.groups[gi].tenant, lists[gi]};
  }
  EncoderConfig config;
  config.hmax_leaf_override = 2;
  config.srule_capacity = 8;
  util::ThreadPool pool{8};
  Controller controller{topology, config};
  Controller::BulkLoadStats stats;
  controller.create_groups(specs, &pool, &stats);
  EXPECT_GT(stats.serial_reencodes, 0u);
  EXPECT_GT(stats.speculative_commits, 0u);
}

}  // namespace
}  // namespace elmo
