#include "elmo/tree.h"

#include <gtest/gtest.h>

#include "testutil.h"
#include "util/rng.h"

namespace elmo {
namespace {

// The paper's running example (Fig. 3a): 4 pods x 2 spines x 2 leaves x
// 2 hosts; group = {Ha, Hb, Hk, Hm, Hn, Hp} = hosts {0, 1, 10, 12, 13, 15}.
const std::vector<topo::HostId> kExampleMembers{0, 1, 10, 12, 13, 15};

topo::ClosTopology example_topo() {
  return topo::ClosTopology{topo::ClosParams::running_example()};
}

TEST(MulticastTree, MatchesFigure3Bitmaps) {
  const auto t = example_topo();
  const MulticastTree tree{t, kExampleMembers};

  ASSERT_EQ(tree.num_leaves(), 4u);
  ASSERT_EQ(tree.num_pods(), 3u);
  EXPECT_EQ(tree.num_members(), 6u);

  // Leaf bitmaps from the figure: L0=11, L5=10, L6=11, L7=01.
  EXPECT_EQ(tree.find_leaf(0)->host_ports.to_string(), "11");
  EXPECT_EQ(tree.find_leaf(5)->host_ports.to_string(), "10");
  EXPECT_EQ(tree.find_leaf(6)->host_ports.to_string(), "11");
  EXPECT_EQ(tree.find_leaf(7)->host_ports.to_string(), "01");
  EXPECT_EQ(tree.find_leaf(1), nullptr);

  // Logical-spine bitmaps: P0=10, P2=01, P3=11.
  EXPECT_EQ(tree.find_pod(0)->leaf_ports.to_string(), "10");
  EXPECT_EQ(tree.find_pod(2)->leaf_ports.to_string(), "01");
  EXPECT_EQ(tree.find_pod(3)->leaf_ports.to_string(), "11");
  EXPECT_EQ(tree.find_pod(1), nullptr);

  EXPECT_EQ(tree.member_pods().to_string(), "1011");
}

TEST(MulticastTree, MembershipQueries) {
  const auto t = example_topo();
  const MulticastTree tree{t, kExampleMembers};
  for (const auto m : kExampleMembers) EXPECT_TRUE(tree.is_member(m));
  EXPECT_FALSE(tree.is_member(2));
  EXPECT_FALSE(tree.is_member(11));  // Hl shares L5 but is not a member
}

TEST(MulticastTree, DuplicateMembersCollapse) {
  const auto t = example_topo();
  const std::vector<topo::HostId> dup{0, 0, 1, 1};
  const MulticastTree tree{t, dup};
  EXPECT_EQ(tree.num_members(), 2u);
  EXPECT_EQ(tree.num_leaves(), 1u);
}

TEST(MulticastTree, SenderHaEncodingMatchesFigure3b) {
  const auto t = example_topo();
  const MulticastTree tree{t, kExampleMembers};
  const auto enc = tree.sender_encoding(/*Ha=*/0);

  // "At L0: forward to Hb and multipath to P0" -> u-leaf 01|M.
  EXPECT_EQ(enc.u_leaf.down.to_string(), "01");
  EXPECT_TRUE(enc.u_leaf.multipath);
  // "P0: multipath to C" -> u-spine 00|M.
  ASSERT_TRUE(enc.u_spine);
  EXPECT_EQ(enc.u_spine->down.to_string(), "00");
  EXPECT_TRUE(enc.u_spine->multipath);
  // "C: forward to P2, P3" -> core bitmap 0011.
  ASSERT_TRUE(enc.core_pods);
  EXPECT_EQ(enc.core_pods->to_string(), "0011");
}

TEST(MulticastTree, SenderHkEncodingMatchesFigure3b) {
  const auto t = example_topo();
  const MulticastTree tree{t, kExampleMembers};
  const auto enc = tree.sender_encoding(/*Hk=*/10);

  // "At L5: multipath to P2" (no other local receivers) -> 00|M.
  EXPECT_EQ(enc.u_leaf.down.to_string(), "00");
  EXPECT_TRUE(enc.u_leaf.multipath);
  ASSERT_TRUE(enc.u_spine);
  EXPECT_EQ(enc.u_spine->down.to_string(), "00");
  // "C: forward to P0, P3" -> 1001.
  ASSERT_TRUE(enc.core_pods);
  EXPECT_EQ(enc.core_pods->to_string(), "1001");
}

TEST(MulticastTree, SingleRackGroupNeedsNoUpstream) {
  const auto t = example_topo();
  const std::vector<topo::HostId> members{0, 1};
  const MulticastTree tree{t, members};
  const auto enc = tree.sender_encoding(0);
  EXPECT_EQ(enc.u_leaf.down.to_string(), "01");
  EXPECT_FALSE(enc.u_leaf.multipath);
  EXPECT_FALSE(enc.u_spine);
  EXPECT_FALSE(enc.core_pods);
}

TEST(MulticastTree, SinglePodGroupSkipsCore) {
  const auto t = example_topo();
  // L0 (hosts 0,1) and L1 (hosts 2,3) are both in pod 0.
  const std::vector<topo::HostId> members{0, 2};
  const MulticastTree tree{t, members};
  const auto enc = tree.sender_encoding(0);
  EXPECT_TRUE(enc.u_leaf.multipath);
  ASSERT_TRUE(enc.u_spine);
  EXPECT_EQ(enc.u_spine->down.to_string(), "01");  // forward down to L1
  EXPECT_FALSE(enc.u_spine->multipath);
  EXPECT_FALSE(enc.core_pods);
}

TEST(MulticastTree, NonMemberSenderStillRoutes) {
  const auto t = example_topo();
  const std::vector<topo::HostId> members{12, 13};  // all in pod 3
  const MulticastTree tree{t, members};
  const auto enc = tree.sender_encoding(/*host in pod 0=*/0);
  EXPECT_EQ(enc.u_leaf.down.popcount(), 0u);
  EXPECT_TRUE(enc.u_leaf.multipath);
  ASSERT_TRUE(enc.core_pods);
  EXPECT_EQ(enc.core_pods->to_string(), "0001");
}

TEST(MulticastTree, FailureDisablesMultipathAndPicksAliveSpine) {
  const auto t = example_topo();
  const MulticastTree tree{t, kExampleMembers};
  topo::FailureSet failures;
  failures.fail_spine(t.spine_at(0, 0));  // S0: plane 0 of pod 0

  const auto route = tree.sender_route(/*Ha=*/0, failures);
  const auto& enc = route.encoding;
  EXPECT_FALSE(enc.u_leaf.multipath);
  // Must avoid the failed plane 0 spine: only plane 1 remains.
  EXPECT_FALSE(enc.u_leaf.up.test(0));
  EXPECT_TRUE(enc.u_leaf.up.test(1));
  ASSERT_TRUE(enc.u_spine);
  EXPECT_FALSE(enc.u_spine->multipath);
  EXPECT_EQ(enc.u_spine->up.popcount(), 1u);
  EXPECT_TRUE(route.unreachable_pods.empty());
  ASSERT_TRUE(enc.core_pods);
  EXPECT_EQ(enc.core_pods->to_string(), "0011");
}

TEST(MulticastTree, CoreFailureRoutesThroughAliveCore) {
  const auto t = example_topo();
  const MulticastTree tree{t, kExampleMembers};
  topo::FailureSet failures;
  failures.fail_core(t.core_at(0, 0));

  const auto route = tree.sender_route(0, failures);
  const auto& enc = route.encoding;
  ASSERT_TRUE(enc.u_spine);
  EXPECT_TRUE(route.unreachable_pods.empty());
  // Whatever plane was chosen, the selected core port must be alive.
  bool ok = false;
  enc.u_leaf.up.for_each_set([&](std::size_t plane) {
    enc.u_spine->up.for_each_set([&](std::size_t core_port) {
      if (!failures.core_failed(t.core_at(plane, core_port))) ok = true;
    });
  });
  EXPECT_TRUE(ok);
}

TEST(MulticastTree, RemoteSpineFailureMarksPodUnreachableOnlyIfUncoverable) {
  const auto t = example_topo();
  const MulticastTree tree{t, kExampleMembers};
  topo::FailureSet failures;
  // Kill pod 2's spines on BOTH planes: pod 2 becomes unreachable.
  failures.fail_spine(t.spine_at(2, 0));
  failures.fail_spine(t.spine_at(2, 1));

  const auto route = tree.sender_route(0, failures);
  ASSERT_EQ(route.unreachable_pods.size(), 1u);
  EXPECT_EQ(route.unreachable_pods[0], 2u);
  // Pod 3 must still be covered.
  ASSERT_TRUE(route.encoding.core_pods);
  EXPECT_TRUE(route.encoding.core_pods->test(3));
  EXPECT_FALSE(route.encoding.core_pods->test(2));
}

TEST(MulticastTree, RandomGroupsTreeInvariants) {
  const topo::ClosTopology t{topo::ClosParams::small_test()};
  util::Rng rng{515};
  for (int trial = 0; trial < 100; ++trial) {
    const auto members =
        test::random_hosts(t, 2 + rng.index(t.num_hosts() - 2), rng);
    const MulticastTree tree{t, members};
    EXPECT_EQ(tree.num_members(), members.size());

    // Sum of leaf bitmap popcounts == member count; pods consistent.
    std::size_t total = 0;
    for (const auto& leaf : tree.leaves()) {
      total += leaf.host_ports.popcount();
      const auto* pod = tree.find_pod(t.pod_of_leaf(leaf.leaf));
      ASSERT_NE(pod, nullptr);
      EXPECT_TRUE(pod->leaf_ports.test(t.leaf_index_in_pod(leaf.leaf)));
      EXPECT_TRUE(tree.member_pods().test(pod->pod));
    }
    EXPECT_EQ(total, members.size());

    std::size_t pod_leaf_total = 0;
    for (const auto& pod : tree.pods()) {
      pod_leaf_total += pod.leaf_ports.popcount();
    }
    EXPECT_EQ(pod_leaf_total, tree.num_leaves());
  }
}

}  // namespace
}  // namespace elmo
