#include "elmo/churn.h"

#include <gtest/gtest.h>

namespace elmo {
namespace {

// Plain value type so tests can instantiate a second independent world.
struct ChurnWorld {
  ChurnWorld()
      : topology{topo::ClosParams::small_test()},
        rng{31337},
        cloud{topology, cloud::CloudParams::small_test(), rng},
        controller{topology, EncoderConfig{}} {}

  std::vector<GroupId> load_groups(std::size_t count) {
    cloud::WorkloadParams wp;
    wp.total_groups = count;
    wp.min_group_size = 3;
    const cloud::GroupWorkload workload{cloud, wp, rng};
    std::vector<GroupId> ids;
    for (const auto& group : workload.groups()) {
      std::vector<Member> members;
      for (std::size_t i = 0; i < group.size(); ++i) {
        members.push_back(Member{group.member_hosts[i], group.member_vms[i],
                                 static_cast<MemberRole>(rng.index(3))});
      }
      ids.push_back(controller.create_group(group.tenant, members));
    }
    return ids;
  }

  topo::ClosTopology topology;
  util::Rng rng;
  cloud::Cloud cloud;
  Controller controller;
};

struct ChurnFixture : ::testing::Test, ChurnWorld {};

TEST_F(ChurnFixture, EventsKeepGroupsWithinBounds) {
  const auto ids = load_groups(50);
  CountingSink sink{topology};
  controller.set_sink(&sink);
  ChurnSimulator churn{controller, cloud, ids};

  ChurnParams params;
  params.events = 2000;
  params.min_group_size = 3;
  const double seconds = churn.run(params, rng);
  // Effective duration excludes no-op attempts; attempts = effective + noops.
  const double expected_seconds =
      static_cast<double>(params.events - churn.noop_events()) /
      params.events_per_second;
  EXPECT_DOUBLE_EQ(seconds, expected_seconds);
  EXPECT_LE(seconds, 2.0);
  EXPECT_GT(seconds, 0.0);
  EXPECT_GT(churn.joins(), 0u);
  EXPECT_GT(churn.leaves(), 0u);
  EXPECT_EQ(churn.joins() + churn.leaves() + churn.noop_events(),
            params.events);

  for (const auto id : ids) {
    const auto& g = controller.group(id);
    EXPECT_GE(g.members.size(), params.min_group_size);
    const auto& tenant = cloud.tenants()[g.tenant];
    EXPECT_LE(g.members.size(), tenant.size());
    // Membership stays consistent with the tenant's VM list.
    for (const auto& m : g.members) {
      EXPECT_EQ(m.host, tenant.vm_hosts[m.vm]);
    }
  }
}

TEST_F(ChurnFixture, UpdateLoadShape) {
  // The paper's Table 2 ordering: hypervisors absorb most updates, leaves
  // and spines see only s-rule changes, cores none at all.
  const auto ids = load_groups(50);
  CountingSink sink{topology};
  controller.set_sink(&sink);
  ChurnSimulator churn{controller, cloud, ids};

  ChurnParams params;
  params.events = 3000;
  params.min_group_size = 3;
  const double seconds = churn.run(params, rng);

  const auto hyp = sink.hypervisor_rates(seconds);
  const auto leaf = sink.leaf_rates(seconds);
  const auto spine = sink.spine_rates(seconds);
  const auto core = sink.core_rates(seconds);

  EXPECT_GT(hyp.total, 0u);
  EXPECT_EQ(core.total, 0u);
  EXPECT_GE(hyp.total, leaf.total);
  EXPECT_GE(hyp.total, spine.total);
  EXPECT_GE(hyp.max, hyp.avg);
}

TEST_F(ChurnFixture, ChurnIsDeterministicPerSeed) {
  const auto ids = load_groups(20);
  ChurnSimulator churn{controller, cloud, ids};
  ChurnParams params;
  params.events = 500;
  params.min_group_size = 3;
  util::Rng churn_rng{777};
  churn.run(params, churn_rng);
  const auto joins_first = churn.joins();

  // Re-run the whole world fresh with the same seed: identical outcome.
  ChurnWorld other;
  const auto other_ids = other.load_groups(20);
  ChurnSimulator other_churn{other.controller, other.cloud, other_ids};
  util::Rng other_rng{777};
  other_churn.run(params, other_rng);
  EXPECT_EQ(other_churn.joins(), joins_first);
}

TEST_F(ChurnFixture, RejectsEmptyGroupList) {
  EXPECT_THROW(ChurnSimulator(controller, cloud, {}), std::invalid_argument);
}

TEST(ChurnColocation, ControllerMatchesSimulatorWithSharedHosts) {
  topo::ClosTopology topology{topo::ClosParams::small_test()};
  Controller controller{topology, EncoderConfig{}};

  // Twelve VMs packed four-per-host: several group members share a host, so
  // a leave that matched by host alone would remove the wrong VM.
  std::vector<cloud::Tenant> tenants(1);
  tenants[0].id = 0;
  for (std::uint32_t vm = 0; vm < 12; ++vm) {
    tenants[0].vm_hosts.push_back(vm / 4);
  }

  std::vector<Member> members;
  for (std::uint32_t vm = 0; vm < 4; ++vm) {
    members.push_back(Member{tenants[0].vm_hosts[vm], vm, MemberRole::kBoth});
  }
  const std::vector<GroupId> ids{controller.create_group(0, members)};
  ChurnSimulator churn{controller, tenants, ids};

  util::Rng rng{4242};
  for (int i = 0; i < 400; ++i) {
    churn.step(2, rng);
    const auto& expected = churn.membership(0);
    const auto& group = controller.group(ids[0]);
    ASSERT_EQ(group.members.size(), expected.size()) << "after event " << i;
    for (const auto& m : group.members) {
      ASSERT_TRUE(expected.contains(m.vm))
          << "after event " << i << ": controller holds vm " << m.vm
          << " the simulator does not";
      ASSERT_EQ(m.host, tenants[0].vm_hosts[m.vm]) << "after event " << i;
    }
  }
  EXPECT_GT(churn.joins(), 0u);
  EXPECT_GT(churn.leaves(), 0u);
}

TEST(ChurnWeights, SamplingTracksLiveSizesNotInitialOnes) {
  // Two single-tenant groups: A starts at the 3-VM minimum, B at 24 VMs.
  // After A grows to dominate the population, a size-proportional sampler
  // must pick A most of the time; the pre-fix sampler kept using the
  // initial cumulative weights and would still pick B ~8x more often.
  topo::ClosTopology topology{topo::ClosParams::small_test()};
  Controller controller{topology, EncoderConfig{}};

  std::vector<cloud::Tenant> tenants(2);
  for (std::uint32_t t = 0; t < 2; ++t) {
    tenants[t].id = t;
    for (std::uint32_t vm = 0; vm < 200; ++vm) {
      tenants[t].vm_hosts.push_back((vm % topology.num_hosts()));
    }
  }
  auto make_group = [&](std::uint32_t tenant, std::uint32_t size) {
    std::vector<Member> members;
    for (std::uint32_t vm = 0; vm < size; ++vm) {
      members.push_back(
          Member{tenants[tenant].vm_hosts[vm], vm, MemberRole::kBoth});
    }
    return controller.create_group(tenant, members);
  };
  const std::vector<GroupId> ids{make_group(0, 3), make_group(1, 24)};
  ChurnSimulator churn{controller, tenants, ids};
  EXPECT_EQ(churn.sampling_weight(0), 3u);
  EXPECT_EQ(churn.sampling_weight(1), 24u);

  // Grow group A far past B by injecting joins directly.
  util::Rng rng{99};
  for (std::uint32_t vm = 3; vm < 180; ++vm) {
    Member m{tenants[0].vm_hosts[vm], vm, MemberRole::kBoth};
    controller.join(ids[0], m);
  }
  // The simulator only learns about its own events, so resync by driving
  // joins through it: rebuild a fresh simulator over the mutated groups.
  ChurnSimulator live{controller, tenants, ids};
  EXPECT_EQ(live.sampling_weight(0), 180u);

  // Count which group each step mutates over a long run. Group sizes stay
  // near 180 vs 24, so a live sampler picks A ~88% of the time; the stale
  // initial distribution (3 vs 24) would pick A ~11%.
  std::size_t a_events = 0, total = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto a_before = controller.group(ids[0]).members.size();
    if (!live.step(3, rng)) continue;
    ++total;
    if (controller.group(ids[0]).members.size() != a_before) ++a_events;
  }
  ASSERT_GT(total, 0u);
  const double a_share =
      static_cast<double>(a_events) / static_cast<double>(total);
  EXPECT_GT(a_share, 0.7);

  // And the weights themselves stay in lockstep with the controller.
  EXPECT_EQ(live.sampling_weight(0), controller.group(ids[0]).members.size());
  EXPECT_EQ(live.sampling_weight(1), controller.group(ids[1]).members.size());
}

TEST(ChurnNoops, ExhaustedTenantAttemptsAreCountedAndExcluded) {
  // One group owning every VM of a 4-VM tenant, pinned at min size 4: every
  // attempt is a no-op (cannot grow, cannot shrink). The pre-fix run()
  // still reported the full duration, overstating updates/sec denominators.
  topo::ClosTopology topology{topo::ClosParams::small_test()};
  Controller controller{topology, EncoderConfig{}};

  std::vector<cloud::Tenant> tenants(1);
  tenants[0].id = 0;
  for (std::uint32_t vm = 0; vm < 4; ++vm) tenants[0].vm_hosts.push_back(vm);

  std::vector<Member> members;
  for (std::uint32_t vm = 0; vm < 4; ++vm) {
    members.push_back(Member{tenants[0].vm_hosts[vm], vm, MemberRole::kBoth});
  }
  const std::vector<GroupId> ids{controller.create_group(0, members)};
  ChurnSimulator churn{controller, tenants, ids};

  util::Rng rng{5};
  ChurnParams params;
  params.events = 100;
  params.min_group_size = 4;
  const double seconds = churn.run(params, rng);
  EXPECT_EQ(churn.noop_events(), 100u);
  EXPECT_EQ(churn.joins() + churn.leaves(), 0u);
  EXPECT_DOUBLE_EQ(seconds, 0.0);
}

TEST(CountingSink, RateMath) {
  const topo::ClosTopology t{topo::ClosParams::small_test()};
  CountingSink sink{t};
  sink.hypervisor_update(3);
  sink.hypervisor_update(3);
  sink.hypervisor_update(7);
  const auto rates = sink.hypervisor_rates(2.0);
  EXPECT_EQ(rates.total, 3u);
  EXPECT_DOUBLE_EQ(rates.max, 1.0);  // host 3: 2 updates / 2 s
  EXPECT_DOUBLE_EQ(rates.avg,
                   3.0 / static_cast<double>(t.num_hosts()) / 2.0);
  sink.reset();
  EXPECT_EQ(sink.hypervisor_rates(1.0).total, 0u);
}

TEST(CountingSink, RejectsNonPositiveDuration) {
  // A zero/negative duration used to yield silent all-zero rates, which a
  // miswired bench would happily record as data.
  const topo::ClosTopology t{topo::ClosParams::small_test()};
  CountingSink sink{t};
  sink.hypervisor_update(0);
  EXPECT_THROW(sink.hypervisor_rates(0.0), std::invalid_argument);
  EXPECT_THROW(sink.leaf_rates(-1.0), std::invalid_argument);
  EXPECT_THROW(sink.spine_rates(0.0), std::invalid_argument);
  EXPECT_THROW(sink.core_rates(0.0), std::invalid_argument);
}

TEST(CountingSink, RejectsHostAsNetworkSwitch) {
  const topo::ClosTopology t{topo::ClosParams::small_test()};
  CountingSink sink{t};
  EXPECT_THROW(sink.network_switch_update(topo::Layer::kHost, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace elmo
