#include "elmo/churn.h"

#include <gtest/gtest.h>

namespace elmo {
namespace {

// Plain value type so tests can instantiate a second independent world.
struct ChurnWorld {
  ChurnWorld()
      : topology{topo::ClosParams::small_test()},
        rng{31337},
        cloud{topology, cloud::CloudParams::small_test(), rng},
        controller{topology, EncoderConfig{}} {}

  std::vector<GroupId> load_groups(std::size_t count) {
    cloud::WorkloadParams wp;
    wp.total_groups = count;
    wp.min_group_size = 3;
    const cloud::GroupWorkload workload{cloud, wp, rng};
    std::vector<GroupId> ids;
    for (const auto& group : workload.groups()) {
      std::vector<Member> members;
      for (std::size_t i = 0; i < group.size(); ++i) {
        members.push_back(Member{group.member_hosts[i], group.member_vms[i],
                                 static_cast<MemberRole>(rng.index(3))});
      }
      ids.push_back(controller.create_group(group.tenant, members));
    }
    return ids;
  }

  topo::ClosTopology topology;
  util::Rng rng;
  cloud::Cloud cloud;
  Controller controller;
};

struct ChurnFixture : ::testing::Test, ChurnWorld {};

TEST_F(ChurnFixture, EventsKeepGroupsWithinBounds) {
  const auto ids = load_groups(50);
  CountingSink sink{topology};
  controller.set_sink(&sink);
  ChurnSimulator churn{controller, cloud, ids};

  ChurnParams params;
  params.events = 2000;
  params.min_group_size = 3;
  const double seconds = churn.run(params, rng);
  EXPECT_DOUBLE_EQ(seconds, 2.0);
  EXPECT_GT(churn.joins(), 0u);
  EXPECT_GT(churn.leaves(), 0u);

  for (const auto id : ids) {
    const auto& g = controller.group(id);
    EXPECT_GE(g.members.size(), params.min_group_size);
    const auto& tenant = cloud.tenants()[g.tenant];
    EXPECT_LE(g.members.size(), tenant.size());
    // Membership stays consistent with the tenant's VM list.
    for (const auto& m : g.members) {
      EXPECT_EQ(m.host, tenant.vm_hosts[m.vm]);
    }
  }
}

TEST_F(ChurnFixture, UpdateLoadShape) {
  // The paper's Table 2 ordering: hypervisors absorb most updates, leaves
  // and spines see only s-rule changes, cores none at all.
  const auto ids = load_groups(50);
  CountingSink sink{topology};
  controller.set_sink(&sink);
  ChurnSimulator churn{controller, cloud, ids};

  ChurnParams params;
  params.events = 3000;
  params.min_group_size = 3;
  const double seconds = churn.run(params, rng);

  const auto hyp = sink.hypervisor_rates(seconds);
  const auto leaf = sink.leaf_rates(seconds);
  const auto spine = sink.spine_rates(seconds);
  const auto core = sink.core_rates(seconds);

  EXPECT_GT(hyp.total, 0u);
  EXPECT_EQ(core.total, 0u);
  EXPECT_GE(hyp.total, leaf.total);
  EXPECT_GE(hyp.total, spine.total);
  EXPECT_GE(hyp.max, hyp.avg);
}

TEST_F(ChurnFixture, ChurnIsDeterministicPerSeed) {
  const auto ids = load_groups(20);
  ChurnSimulator churn{controller, cloud, ids};
  ChurnParams params;
  params.events = 500;
  params.min_group_size = 3;
  util::Rng churn_rng{777};
  churn.run(params, churn_rng);
  const auto joins_first = churn.joins();

  // Re-run the whole world fresh with the same seed: identical outcome.
  ChurnWorld other;
  const auto other_ids = other.load_groups(20);
  ChurnSimulator other_churn{other.controller, other.cloud, other_ids};
  util::Rng other_rng{777};
  other_churn.run(params, other_rng);
  EXPECT_EQ(other_churn.joins(), joins_first);
}

TEST_F(ChurnFixture, RejectsEmptyGroupList) {
  EXPECT_THROW(ChurnSimulator(controller, cloud, {}), std::invalid_argument);
}

TEST(ChurnColocation, ControllerMatchesSimulatorWithSharedHosts) {
  topo::ClosTopology topology{topo::ClosParams::small_test()};
  Controller controller{topology, EncoderConfig{}};

  // Twelve VMs packed four-per-host: several group members share a host, so
  // a leave that matched by host alone would remove the wrong VM.
  std::vector<cloud::Tenant> tenants(1);
  tenants[0].id = 0;
  for (std::uint32_t vm = 0; vm < 12; ++vm) {
    tenants[0].vm_hosts.push_back(vm / 4);
  }

  std::vector<Member> members;
  for (std::uint32_t vm = 0; vm < 4; ++vm) {
    members.push_back(Member{tenants[0].vm_hosts[vm], vm, MemberRole::kBoth});
  }
  const std::vector<GroupId> ids{controller.create_group(0, members)};
  ChurnSimulator churn{controller, tenants, ids};

  util::Rng rng{4242};
  for (int i = 0; i < 400; ++i) {
    churn.step(2, rng);
    const auto& expected = churn.membership(0);
    const auto& group = controller.group(ids[0]);
    ASSERT_EQ(group.members.size(), expected.size()) << "after event " << i;
    for (const auto& m : group.members) {
      ASSERT_TRUE(expected.contains(m.vm))
          << "after event " << i << ": controller holds vm " << m.vm
          << " the simulator does not";
      ASSERT_EQ(m.host, tenants[0].vm_hosts[m.vm]) << "after event " << i;
    }
  }
  EXPECT_GT(churn.joins(), 0u);
  EXPECT_GT(churn.leaves(), 0u);
}

TEST(CountingSink, RateMath) {
  const topo::ClosTopology t{topo::ClosParams::small_test()};
  CountingSink sink{t};
  sink.hypervisor_update(3);
  sink.hypervisor_update(3);
  sink.hypervisor_update(7);
  const auto rates = sink.hypervisor_rates(2.0);
  EXPECT_EQ(rates.total, 3u);
  EXPECT_DOUBLE_EQ(rates.max, 1.0);  // host 3: 2 updates / 2 s
  EXPECT_DOUBLE_EQ(rates.avg,
                   3.0 / static_cast<double>(t.num_hosts()) / 2.0);
  sink.reset();
  EXPECT_EQ(sink.hypervisor_rates(1.0).total, 0u);
}

TEST(CountingSink, RejectsHostAsNetworkSwitch) {
  const topo::ClosTopology t{topo::ClosParams::small_test()};
  CountingSink sink{t};
  EXPECT_THROW(sink.network_switch_update(topo::Layer::kHost, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace elmo
