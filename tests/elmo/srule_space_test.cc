#include "elmo/srule_space.h"

#include <gtest/gtest.h>

namespace elmo {
namespace {

topo::ClosTopology small() {
  return topo::ClosTopology{topo::ClosParams::small_test()};
}

TEST(SRuleSpace, LeafCapacityEnforced) {
  const auto t = small();
  SRuleSpace space{t, 2};
  EXPECT_TRUE(space.try_reserve_leaf(0));
  EXPECT_TRUE(space.try_reserve_leaf(0));
  EXPECT_FALSE(space.try_reserve_leaf(0));
  EXPECT_EQ(space.leaf_occupancy(0), 2u);
  EXPECT_TRUE(space.try_reserve_leaf(1));  // other switches unaffected
}

TEST(SRuleSpace, ReleaseRestoresCapacity) {
  const auto t = small();
  SRuleSpace space{t, 1};
  ASSERT_TRUE(space.try_reserve_leaf(3));
  EXPECT_FALSE(space.try_reserve_leaf(3));
  space.release_leaf(3);
  EXPECT_TRUE(space.try_reserve_leaf(3));
}

TEST(SRuleSpace, ReleaseUnderflowThrows) {
  const auto t = small();
  SRuleSpace space{t, 1};
  EXPECT_THROW(space.release_leaf(0), std::logic_error);
  EXPECT_THROW(space.release_pod_spines(0), std::logic_error);
}

TEST(SRuleSpace, PodSpineReservationTouchesAllPlanes) {
  const auto t = small();  // 2 spines per pod
  SRuleSpace space{t, 3};
  ASSERT_TRUE(space.try_reserve_pod_spines(1));
  EXPECT_EQ(space.spine_occupancy(t.spine_at(1, 0)), 1u);
  EXPECT_EQ(space.spine_occupancy(t.spine_at(1, 1)), 1u);
  EXPECT_EQ(space.spine_occupancy(t.spine_at(0, 0)), 0u);
  space.release_pod_spines(1);
  EXPECT_EQ(space.spine_occupancy(t.spine_at(1, 0)), 0u);
}

TEST(SRuleSpace, PodSpineReservationIsAllOrNothing) {
  const auto t = small();
  SRuleSpace space{t, 1};
  ASSERT_TRUE(space.try_reserve_pod_spines(0));
  // Both spines of pod 0 are now full; a second reservation must fail
  // without partially consuming anything.
  EXPECT_FALSE(space.try_reserve_pod_spines(0));
  EXPECT_EQ(space.spine_occupancy(t.spine_at(0, 0)), 1u);
  EXPECT_EQ(space.spine_occupancy(t.spine_at(0, 1)), 1u);
}

TEST(SRuleSpace, ZeroCapacityRefusesEverything) {
  const auto t = small();
  SRuleSpace space{t, 0};
  EXPECT_FALSE(space.try_reserve_leaf(0));
  EXPECT_FALSE(space.try_reserve_pod_spines(0));
}

TEST(SRuleSpace, StatsReflectOccupancy) {
  const auto t = small();
  SRuleSpace space{t, 10};
  space.try_reserve_leaf(0);
  space.try_reserve_leaf(0);
  space.try_reserve_leaf(5);
  const auto stats = space.leaf_stats();
  EXPECT_EQ(stats.count(), t.num_leaves());
  EXPECT_DOUBLE_EQ(stats.max(), 2.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 3.0);
}

}  // namespace
}  // namespace elmo
