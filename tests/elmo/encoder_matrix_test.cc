// The pluggable TreeEncoder contract (DESIGN.md §11) exercised uniformly
// across every EncoderKind: config validation rejects impossible knob
// combinations with a clear message, every scheme covers every tree switch
// with superset bitmaps and a clean switch partition, and churn-style
// encode/release cycles return every s-rule reservation to the watermark.
#include "elmo/tree_encoder.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "elmo/clustering.h"
#include "elmo/srule_space.h"
#include "elmo/tree.h"
#include "testutil.h"
#include "util/rng.h"

namespace elmo {
namespace {

const topo::ClosTopology& small_topology() {
  static const topo::ClosTopology t{topo::ClosParams::small_test()};
  return t;
}

// --- Satellite: EncoderConfig validation, one test per invalid case. ---

TEST(EncoderConfigValidation, RejectsZeroHmaxSpine) {
  EncoderConfig cfg;
  cfg.hmax_spine = 0;
  EXPECT_THROW(make_encoder(small_topology(), cfg), std::invalid_argument);
}

TEST(EncoderConfigValidation, RejectsZeroKmax) {
  EncoderConfig cfg;
  cfg.kmax = 0;
  EXPECT_THROW(make_encoder(small_topology(), cfg), std::invalid_argument);
}

TEST(EncoderConfigValidation, RejectsHmaxSpineBeyondWireFormat) {
  EncoderConfig cfg;
  cfg.hmax_spine = kMaxRulesPerLayer + 1;  // 7-bit rule count caps at 127
  EXPECT_THROW(make_encoder(small_topology(), cfg), std::invalid_argument);
}

TEST(EncoderConfigValidation, RejectsLeafOverrideBeyondWireFormat) {
  EncoderConfig cfg;
  cfg.hmax_leaf_override = kMaxRulesPerLayer + 1;
  EXPECT_THROW(make_encoder(small_topology(), cfg), std::invalid_argument);
}

TEST(EncoderConfigValidation, RejectsBudgetTooSmallForOneLeafPRule) {
  EncoderConfig cfg;
  cfg.header_budget_bytes = 4;  // cannot fit a single leaf p-rule
  cfg.hmax_leaf_override = 0;   // derivation path is the one that must throw
  EXPECT_THROW(make_encoder(small_topology(), cfg), std::invalid_argument);
}

TEST(EncoderConfigValidation, TinyBudgetFineWhenLeafHmaxOverridden) {
  // The budget floor only applies when hmax_leaf is derived from it; an
  // explicit override takes responsibility for the header size.
  EncoderConfig cfg;
  cfg.header_budget_bytes = 4;
  cfg.hmax_leaf_override = 1;
  EXPECT_NO_THROW(make_encoder(small_topology(), cfg));
}

TEST(EncoderConfigValidation, RejectsZeroP3faEgressClasses) {
  EncoderConfig cfg;
  cfg.encoder = EncoderKind::kP3fa;
  cfg.p3fa_egress_classes = 0;
  EXPECT_THROW(make_encoder(small_topology(), cfg), std::invalid_argument);
  // The knob is P3FA-only: other schemes ignore it.
  cfg.encoder = EncoderKind::kElmo;
  EXPECT_NO_THROW(make_encoder(small_topology(), cfg));
}

TEST(EncoderConfigValidation, ErrorMessagesNameTheOffendingKnob) {
  EncoderConfig cfg;
  cfg.hmax_spine = 0;
  try {
    validate_encoder_config(small_topology(), cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("hmax_spine"), std::string::npos);
  }
}

// --- Per-kind contract tests over the shared EncoderKind matrix. ---

class EncoderMatrix : public ::testing::TestWithParam<EncoderKind> {
 protected:
  EncoderConfig config() const {
    EncoderConfig cfg;
    cfg.encoder = GetParam();
    return cfg;
  }
};

// Per-layer invariants every scheme must uphold: each tree switch is served
// by exactly one of {p-rule, s-rule, default}, p-rule bitmaps are supersets
// of the switch's exact egress set, and no switch id appears in two p-rules.
void expect_layer_contract(const LayerEncoding& layer,
                           const std::vector<LayerInput>& inputs) {
  std::set<std::uint32_t> in_p_rules;
  for (const auto& rule : layer.p_rules) {
    for (const auto id : rule.switch_ids) {
      EXPECT_TRUE(in_p_rules.insert(id).second)
          << "switch " << id << " appears in two p-rules";
    }
  }
  std::set<std::uint32_t> in_s_rules;
  for (const auto& [id, bitmap] : layer.s_rules) {
    EXPECT_TRUE(in_s_rules.insert(id).second);
    EXPECT_FALSE(in_p_rules.count(id))
        << "switch " << id << " has both a p-rule and an s-rule";
  }
  for (const auto& input : inputs) {
    const bool p = in_p_rules.count(input.switch_id) != 0;
    const bool s = in_s_rules.count(input.switch_id) != 0;
    EXPECT_TRUE(p || s || layer.default_rule.has_value())
        << "switch " << input.switch_id << " is uncovered";
    if (p) {
      for (const auto& rule : layer.p_rules) {
        for (const auto id : rule.switch_ids) {
          if (id != input.switch_id) continue;
          EXPECT_TRUE(input.bitmap.is_subset_of(rule.bitmap))
              << "p-rule bitmap drops ports of switch " << input.switch_id;
        }
      }
    } else if (s) {
      for (const auto& [id, bitmap] : layer.s_rules) {
        if (id == input.switch_id) EXPECT_EQ(bitmap, input.bitmap);
      }
    } else {
      EXPECT_TRUE(input.bitmap.is_subset_of(*layer.default_rule));
    }
  }
}

TEST_P(EncoderMatrix, CoversEveryTreeSwitchWithSupersetBitmaps) {
  const auto& t = small_topology();
  util::Rng rng{4242};
  const auto encoder = make_encoder(t, config());
  SRuleSpace space{t, 100};

  for (int trial = 0; trial < 40; ++trial) {
    const auto members =
        test::random_hosts(t, 2 + rng.index(t.num_hosts() / 2), rng);
    const MulticastTree tree{t, members};
    const auto encoding = encoder->encode(tree, &space);

    std::vector<LayerInput> spine_inputs;
    for (const auto& pod : tree.pods()) {
      spine_inputs.push_back(LayerInput{pod.pod, pod.leaf_ports});
    }
    std::vector<LayerInput> leaf_inputs;
    for (const auto& leaf : tree.leaves()) {
      leaf_inputs.push_back(LayerInput{leaf.leaf, leaf.host_ports});
    }
    expect_layer_contract(encoding.spine, spine_inputs);
    expect_layer_contract(encoding.leaf, leaf_inputs);
    encoder->release(encoding, tree, space);
  }
}

TEST_P(EncoderMatrix, HeadersStayWithinBudgetForEverySender) {
  const auto& t = small_topology();
  util::Rng rng{4343};
  const auto cfg = config();
  const auto encoder = make_encoder(t, cfg);

  for (int trial = 0; trial < 25; ++trial) {
    const auto members = test::random_hosts(t, 2 + rng.index(30), rng);
    const MulticastTree tree{t, members};
    const auto encoding = encoder->encode(tree, /*space=*/nullptr);
    EXPECT_LE(encoding.spine.p_rules.size(), encoder->config().hmax_spine);
    EXPECT_LE(encoding.leaf.p_rules.size(), encoder->hmax_leaf());
    for (const auto sender : members) {
      EXPECT_LE(encoder->header_bytes(tree, encoding, sender),
                cfg.header_budget_bytes);
    }
  }
}

// Churn-style leak check: repeated encode/release cycles under a tight
// header budget (forcing s-rule traffic) must restore the reservation
// watermark exactly — under Fmax pressure a leaked entry would starve
// later groups (ISSUE 6 satellite).
TEST_P(EncoderMatrix, ChurnReleaseRestoresSRuleWatermark) {
  const auto& t = small_topology();
  util::Rng rng{4444};
  auto cfg = config();
  cfg.hmax_leaf_override = 1;  // spill most leaves to s-rules / default
  cfg.hmax_spine = 1;
  const auto encoder = make_encoder(t, cfg);
  SRuleSpace space{t, 4};  // finite Fmax so reservations actually contend

  for (int cycle = 0; cycle < 30; ++cycle) {
    const auto members = test::random_hosts(t, 4 + rng.index(40), rng);
    const MulticastTree tree{t, members};
    const auto encoding = encoder->encode(tree, &space);
    if (cycle % 3 == 0) {
      // Exercise the s-rule path for real before releasing.
      EXPECT_LE(encoding.leaf.s_rules.size(), t.num_leaves() * 4);
    }
    encoder->release(encoding, tree, space);
    EXPECT_DOUBLE_EQ(space.leaf_stats().sum(), 0.0)
        << "leaked leaf s-rule after cycle " << cycle;
    EXPECT_DOUBLE_EQ(space.spine_stats().sum(), 0.0)
        << "leaked spine s-rule after cycle " << cycle;
  }
}

// Legacy leaves reserve their s-rule before clustering runs; release must
// return those too, for every scheme (§7 incremental deployment).
TEST_P(EncoderMatrix, LegacyLeafReservationsReleasedToo) {
  const auto& t = small_topology();
  util::Rng rng{4545};
  const auto encoder = make_encoder(t, config());
  SRuleSpace space{t, 8};
  std::vector<bool> legacy(t.num_leaves(), false);
  for (std::size_t i = 0; i < legacy.size(); i += 2) legacy[i] = true;

  for (int cycle = 0; cycle < 15; ++cycle) {
    const auto members = test::random_hosts(t, 6 + rng.index(24), rng);
    const MulticastTree tree{t, members};
    const auto encoding = encoder->encode(tree, &space, &legacy);
    encoder->release(encoding, tree, space);
  }
  EXPECT_DOUBLE_EQ(space.leaf_stats().sum(), 0.0);
  EXPECT_DOUBLE_EQ(space.spine_stats().sum(), 0.0);
}

// Determinism is load-bearing: the controller's speculative parallel encode
// replays reservation outcomes and compares encodings by value.
TEST_P(EncoderMatrix, EncodeIsDeterministic) {
  const auto& t = small_topology();
  util::Rng rng{4646};
  const auto encoder = make_encoder(t, config());
  for (int trial = 0; trial < 10; ++trial) {
    const auto members = test::random_hosts(t, 2 + rng.index(40), rng);
    const MulticastTree tree{t, members};
    const auto a = encoder->encode(tree, nullptr);
    const auto b = encoder->encode(tree, nullptr);
    EXPECT_EQ(a, b);
  }
}

TEST_P(EncoderMatrix, NameKindAndCapabilitiesAgree) {
  const auto& t = small_topology();
  const auto encoder = make_encoder(t, config());
  EXPECT_EQ(encoder->kind(), GetParam());
  EXPECT_EQ(encoder->name(), std::string_view{to_string(GetParam())});
  EXPECT_EQ(parse_encoder_kind(encoder->name()), GetParam());
  const auto caps = encoder->capabilities();
  // Every shipped scheme emits exact s-rule bitmaps (release symmetry).
  EXPECT_TRUE(caps.exact_srule_bitmaps);
  EXPECT_EQ(caps.honors_redundancy_limit, GetParam() == EncoderKind::kElmo);
  EXPECT_EQ(caps.bounded_egress_diversity, GetParam() == EncoderKind::kP3fa);
}

// P3FA's defining bound: at most E distinct egress bitmaps per downstream
// layer, counting p-rules and the default rule.
TEST(P3faEncoder, BoundsDistinctEgressBitmaps) {
  const auto& t = small_topology();
  util::Rng rng{4747};
  EncoderConfig cfg;
  cfg.encoder = EncoderKind::kP3fa;
  cfg.p3fa_egress_classes = 2;
  cfg.hmax_leaf_override = kMaxRulesPerLayer;  // no spill: pure quantization
  cfg.hmax_spine = kMaxRulesPerLayer;
  const auto encoder = make_encoder(t, cfg);

  for (int trial = 0; trial < 20; ++trial) {
    const auto members = test::random_hosts(t, 8 + rng.index(40), rng);
    const MulticastTree tree{t, members};
    const auto encoding = encoder->encode(tree, nullptr);
    std::set<std::vector<bool>> distinct;
    auto key = [&](const net::PortBitmap& bm) {
      std::vector<bool> bits(t.params().hosts_per_leaf);
      for (std::size_t p = 0; p < bits.size(); ++p) bits[p] = bm.test(p);
      return bits;
    };
    for (const auto& rule : encoding.leaf.p_rules) {
      distinct.insert(key(rule.bitmap));
    }
    if (encoding.leaf.default_rule) {
      distinct.insert(key(*encoding.leaf.default_rule));
    }
    EXPECT_LE(distinct.size(), cfg.p3fa_egress_classes);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, EncoderMatrix,
                         ::testing::ValuesIn(kAllEncoderKinds),
                         [](const auto& info) {
                           return std::string{to_string(info.param)};
                         });

}  // namespace
}  // namespace elmo
