// Cross-encoder walk equivalence (ISSUE 6): the same scenario corpus must
// pass the differential delivery oracle under every TreeEncoder kind. The
// oracle's expectation is encoder-independent — the exact member set reaches
// every receiver, no duplicates, no sender self-delivery — so any scheme
// that diverges from another scheme on a shared seed fails here by failing
// the oracle itself.
#include <gtest/gtest.h>

#include <cstdint>

#include "elmo/tree_encoder.h"
#include "verify/differ.h"
#include "verify/scenario.h"

namespace elmo::verify {
namespace {

// Shared corpus: the generator draws topology, workload, churn, failures,
// and knobs from the seed; only the encoder kind is pinned per run.
Scenario corpus_scenario(std::uint64_t seed, EncoderKind kind) {
  auto scenario = generate_scenario(seed);
  scenario.config.encoder = kind;
  return scenario;
}

TEST(EncoderEquivalence, SharedCorpusPassesOracleUnderEveryKind) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    for (const auto kind : kAllEncoderKinds) {
      const auto report = run_scenario(corpus_scenario(seed, kind));
      EXPECT_TRUE(report.ok)
          << "seed " << seed << " under " << to_string(kind) << ": "
          << report.failure;
    }
  }
}

TEST(EncoderEquivalence, EveryKindWalksTheSameSendSequence) {
  // The walk schedule (events run, sends diffed) comes from the scenario,
  // not the encoding: all three schemes must check the identical sequence,
  // or a scheme is silently skipping deliveries the others verify.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto base = run_scenario(corpus_scenario(seed, EncoderKind::kElmo));
    ASSERT_TRUE(base.ok) << base.failure;
    for (const auto kind : {EncoderKind::kBert, EncoderKind::kP3fa}) {
      const auto report = run_scenario(corpus_scenario(seed, kind));
      ASSERT_TRUE(report.ok)
          << "seed " << seed << " under " << to_string(kind) << ": "
          << report.failure;
      EXPECT_EQ(report.events_run, base.events_run) << to_string(kind);
      EXPECT_EQ(report.sends_checked, base.sends_checked) << to_string(kind);
    }
  }
}

TEST(EncoderEquivalence, MutationsAreCaughtUnderEveryKind) {
  // The harness's fault catalog must have no encoder-shaped blind spot:
  // a seeded p-rule corruption is observable no matter which scheme built
  // the header.
  for (const auto kind : kAllEncoderKinds) {
    bool caught = false;
    for (std::uint64_t seed = 1; seed <= 20 && !caught; ++seed) {
      const auto report =
          run_scenario(corpus_scenario(seed, kind), Mutation::kClearPRuleBit);
      caught = report.applied && !report.ok;
    }
    EXPECT_TRUE(caught) << "kClearPRuleBit survived 20 seeds under "
                        << to_string(kind);
  }
}

}  // namespace
}  // namespace elmo::verify
