// The explain layer (DESIGN.md §10): decision-tree attribution joined
// against the delivery oracle, pinned to the data-plane rule counters and
// the analytic evaluator's redundancy decomposition.
#include "verify/explain.h"

#include <gtest/gtest.h>

#include "dataplane/common.h"
#include "elmo/controller.h"
#include "elmo/evaluator.h"
#include "sim/fabric.h"
#include "verify/differ.h"
#include "verify/scenario.h"

namespace elmo::verify {
namespace {

// Counts hop decisions of one rule class at one layer in a trace.
std::size_t decisions_at(const obs::SendTrace& trace, topo::Layer layer,
                         obs::RuleClass rule) {
  std::size_t n = 0;
  for (const auto& hop : trace.hops) {
    if (!hop.lost && hop.layer == layer && hop.decision.rule == rule) ++n;
  }
  return n;
}

// The tight-header-budget scenario (mirrors mtrace's RedundantCopiesAttributed):
// hmax=1 everywhere and no s-rule capacity forces leaves onto the lossy
// default p-rule, producing spurious copies the explain layer must attribute.
TEST(Explain, TightBudgetAttributionMatchesEvaluatorAndCounters) {
  const topo::ClosTopology topology{topo::ClosParams::small_test()};
  elmo::EncoderConfig cfg;
  cfg.hmax_leaf_override = 1;
  cfg.hmax_spine = 1;
  cfg.srule_capacity = 0;
  elmo::Controller controller{topology, cfg};
  sim::Fabric fabric{topology};

  std::vector<elmo::Member> members;
  for (std::uint32_t i = 0; i < 12; ++i) {
    members.push_back(elmo::Member{i * 5 % 64, i, elmo::MemberRole::kBoth});
  }
  const auto id = controller.create_group(0, members);
  fabric.install_group(controller, id);
  const auto& g = controller.group(id);
  const auto sender = members[0].host;

  obs::ProvenanceLog log;
  fabric.set_provenance(&log);
  (void)fabric.send(sender, g.address, std::size_t{64});
  ASSERT_EQ(log.sends().size(), 1u);
  const auto& trace = log.last();

  DeliveryOracle oracle{topology, {}};
  oracle.create_group(members);
  const auto expectation = oracle.expect(0, g.encoding, sender);
  const auto expl = explain_send(trace, expectation);

  // Every member host is still reached, and the tight budget produced
  // default-p-rule spillover that the join attributes as such.
  EXPECT_TRUE(expl.missing.empty());
  EXPECT_EQ(expl.breakdown.intended, expectation.expected_hosts.size());
  EXPECT_GT(expl.breakdown.via_default, 0u);
  EXPECT_EQ(expl.breakdown.duplicates, 0u);
  EXPECT_EQ(expl.breakdown.via_exact_prule, 0u);
  EXPECT_EQ(expl.breakdown.unattributed, 0u);

  // The decomposition sums to the analytic evaluator's overhead accounting.
  const elmo::TrafficEvaluator evaluator{topology};
  const auto hash = dp::flow_hash(dp::host_address(sender), g.address);
  const auto rep = evaluator.evaluate(*g.tree, g.encoding, sender, 64, hash,
                                      &controller.failures(), nullptr);
  EXPECT_EQ(expl.breakdown.intended, rep.delivery.members_reached);
  EXPECT_EQ(expl.breakdown.total_redundant(),
            rep.delivery.duplicate_deliveries +
                rep.delivery.spurious_deliveries);

  // The decision tree is the per-packet view of the rule-class counters:
  // with exactly one send on a fresh fabric they must agree 1:1, per layer.
  for (const auto layer :
       {topo::Layer::kLeaf, topo::Layer::kSpine, topo::Layer::kCore}) {
    const auto s = fabric.aggregate_switch_stats(layer);
    EXPECT_EQ(decisions_at(trace, layer, obs::RuleClass::kDefault),
              s.default_matches);
    EXPECT_EQ(decisions_at(trace, layer, obs::RuleClass::kSRule),
              s.srule_matches);
    EXPECT_EQ(decisions_at(trace, layer, obs::RuleClass::kUpstream),
              s.upstream_matches);
    EXPECT_EQ(decisions_at(trace, layer, obs::RuleClass::kPRule),
              s.prule_matches);
    EXPECT_EQ(decisions_at(trace, layer, obs::RuleClass::kDrop), s.drops);
  }
  // The render carries the attribution line and at least one flagged copy.
  const auto text = expl.render();
  EXPECT_NE(text.find("attribution:"), std::string::npos);
  EXPECT_NE(text.find("via default p-rule"), std::string::npos);
  EXPECT_NE(text.find("<- intended"), std::string::npos);
}

TEST(Explain, RunnerCapturesEveryCheckedSend) {
  const auto scenario = generate_scenario(3);
  std::vector<SendCapture> captures;
  RunObservability observability;
  observability.captures = &captures;
  const auto report =
      run_scenario(scenario, Mutation::kNone, &observability);
  ASSERT_TRUE(report.ok) << report.failure;
  EXPECT_EQ(captures.size(), report.sends_checked);
  for (const auto& capture : captures) {
    EXPECT_EQ(capture.explanation.breakdown.intended,
              capture.evaluator_reached);
    EXPECT_EQ(capture.explanation.breakdown.total_redundant(),
              capture.evaluator_duplicates + capture.evaluator_spurious);
    EXPECT_TRUE(capture.explanation.missing.empty());
  }
}

TEST(Explain, DiffCarriesExplanationForExtraCopy) {
  // kSetPRuleBit seeds an extra delivery the evaluator does not predict: the
  // resulting diff must arrive with the annotated decision tree attached.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto report =
        run_scenario(generate_scenario(seed), Mutation::kSetPRuleBit);
    if (!report.applied || report.ok) continue;
    EXPECT_FALSE(report.explanation.empty());
    EXPECT_NE(report.explanation.find("attribution:"), std::string::npos);
    return;
  }
  FAIL() << "kSetPRuleBit never fired in 20 seeds";
}

TEST(Explain, MissingHostFlaggedInExplanation) {
  // kClearPRuleBit silently drops one member's port bit: the explanation of
  // the failing send must list that host as missing. Pinned to the Elmo
  // encoder: under bert/p3fa the cleared bit can be a shared (non-member)
  // bit, where the diff reports a totals mismatch instead of a missing host.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto scenario = generate_scenario(seed);
    scenario.config.encoder = EncoderKind::kElmo;
    const auto report = run_scenario(scenario, Mutation::kClearPRuleBit);
    if (!report.applied || report.ok) continue;
    EXPECT_FALSE(report.explanation.empty());
    EXPECT_NE(report.explanation.find("MISSING: host"), std::string::npos);
    return;
  }
  FAIL() << "kClearPRuleBit never fired in 20 seeds";
}

}  // namespace
}  // namespace elmo::verify
