#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "verify/differ.h"
#include "verify/oracle.h"
#include "verify/scenario.h"
#include "verify/shrink.h"

namespace elmo::verify {
namespace {

Event send_from(topo::HostId sender) {
  Event e;
  e.kind = EventKind::kSend;
  e.sender = sender;
  return e;
}

Event membership_event(EventKind kind, const Member& member) {
  Event e;
  e.kind = kind;
  e.member = member;
  return e;
}

// A bounded slice of what CI runs at scale: every seed must diff clean
// against the delivery oracle across the whole generated topology ladder.
TEST(FuzzPipeline, CleanSeedsPass) {
  std::size_t sends = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto scenario = generate_scenario(seed);
    const auto report = run_scenario(scenario);
    EXPECT_TRUE(report.ok) << "seed=" << seed << ": " << report.failure;
    sends += report.sends_checked;
  }
  EXPECT_GT(sends, 0u);
}

// Delta mode: the same seeds, with heavy appended churn, routed through the
// streaming control plane (incremental re-encode + coalesced delta installs
// over the wire channel). The runner digest-diffs the fabric against a
// fresh batch install after EVERY event, so a pass means the streamed
// deltas never diverged from from-scratch state at any point in the run.
TEST(FuzzPipeline, DeltaInstallSeedsPassWithContinuousStateDiff) {
  RunOptions options;
  options.delta_installs = true;
  std::size_t sends = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    auto scenario = generate_scenario(seed);
    append_churn_events(scenario, 40, 0xc4);
    const auto report =
        run_scenario(scenario, Mutation::kNone, nullptr, options);
    EXPECT_TRUE(report.ok) << "seed=" << seed << ": " << report.failure;
    sends += report.sends_checked;
  }
  EXPECT_GT(sends, 0u);
}

// The continuous state oracle must catch fabric-side faults in delta mode
// too: a dropped s-rule diverges from the batch-install reference at the
// very first digest diff, before any send has to traverse it.
TEST(FuzzPipeline, DeltaModeCatchesFabricMutations) {
  RunOptions options;
  options.delta_installs = true;
  for (const auto mutation :
       {Mutation::kDropSRule, Mutation::kDropLocalVm, Mutation::kWrongSenderHeader,
        Mutation::kSkipMirrorUpdate, Mutation::kLeaveByHostOnly}) {
    bool caught = false;
    for (std::uint64_t seed = 1; seed <= 60 && !caught; ++seed) {
      const auto report =
          run_scenario(generate_scenario(seed), mutation, nullptr, options);
      caught = report.applied && !report.ok;
    }
    EXPECT_TRUE(caught) << "mutation " << to_string(mutation)
                        << " survived 60 seeds in delta mode";
  }
}

// Appended churn is deterministic per (seed, salt) and valid by
// construction: normalize() — which drops every unexecutable event — must
// keep the script unchanged.
TEST(ScenarioGenerator, AppendedChurnIsDeterministicAndValid) {
  auto a = generate_scenario(77);
  auto b = generate_scenario(77);
  append_churn_events(a, 50, 0xc4);
  append_churn_events(b, 50, 0xc4);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind) << i;
    EXPECT_EQ(a.events[i].group_index, b.events[i].group_index) << i;
    EXPECT_EQ(a.events[i].member.host, b.events[i].member.host) << i;
    EXPECT_EQ(a.events[i].member.vm, b.events[i].member.vm) << i;
  }
  const auto before = a.events.size();
  EXPECT_GE(before, 50u);
  normalize(a);
  EXPECT_EQ(a.events.size(), before)
      << "append_churn_events emitted an event normalize considers invalid";
}

// The harness validates itself: every fault in the mutation catalog must be
// caught (applied && !ok) within a short seed scan, or the differ has a
// blind spot.
TEST(FuzzPipeline, MutationsAreCaught) {
  for (const auto mutation : kAllMutations) {
    bool caught = false;
    for (std::uint64_t seed = 1; seed <= 60 && !caught; ++seed) {
      const auto report = run_scenario(generate_scenario(seed), mutation);
      caught = report.applied && !report.ok;
    }
    EXPECT_TRUE(caught) << "mutation " << to_string(mutation)
                        << " survived 60 seeds";
  }
}

// The pre-fix ChurnSimulator bug — leaves resolved by host only — is exactly
// Mutation::kLeaveByHostOnly. A handcrafted co-location scenario shows the
// harness catches it directly, without any seed scanning.
TEST(FuzzPipeline, CatchesLeaveByHostOnlyUnderColocation) {
  Scenario s;
  s.groups.push_back(ScenarioGroup{
      0,
      {Member{0, 0, MemberRole::kBoth}, Member{0, 1, MemberRole::kReceiver},
       Member{1, 2, MemberRole::kReceiver}}});
  s.events.push_back(send_from(0));
  s.events.push_back(membership_event(EventKind::kLeave,
                                      Member{0, 1, MemberRole::kReceiver}));
  s.events.push_back(send_from(0));
  normalize(s);
  ASSERT_EQ(s.events.size(), 3u);

  const auto clean = run_scenario(s);
  EXPECT_TRUE(clean.ok) << clean.failure;

  // The buggy leave removes the FIRST member on host 0 (vm 0, the sender)
  // instead of the requested vm 1 — membership diverges immediately.
  const auto buggy = run_scenario(s, Mutation::kLeaveByHostOnly);
  EXPECT_TRUE(buggy.applied);
  EXPECT_FALSE(buggy.ok);
}

TEST(FuzzPipeline, NormalizeDropsInvalidEvents) {
  Scenario s;
  s.groups.push_back(ScenarioGroup{
      0,
      {Member{0, 0, MemberRole::kBoth}, Member{1, 1, MemberRole::kReceiver}}});
  // Duplicate join of an existing member.
  s.events.push_back(
      membership_event(EventKind::kJoin, Member{0, 0, MemberRole::kBoth}));
  // Leave of a member that was never in the group.
  s.events.push_back(
      membership_event(EventKind::kLeave, Member{3, 9, MemberRole::kReceiver}));
  // Restore of a spine that never failed.
  Event restore;
  restore.kind = EventKind::kRestoreSpine;
  restore.switch_id = 0;
  s.events.push_back(restore);
  // Send from a host whose only member cannot send.
  s.events.push_back(send_from(1));
  // The one executable event.
  s.events.push_back(send_from(0));

  normalize(s);
  ASSERT_EQ(s.events.size(), 1u);
  EXPECT_EQ(s.events[0].kind, EventKind::kSend);
  EXPECT_EQ(s.events[0].sender, 0u);

  const auto report = run_scenario(s);
  EXPECT_TRUE(report.ok) << report.failure;
}

TEST(Shrink, ProducesMinimalFixtureForSeededFault) {
  Scenario failing;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 50 && !found; ++seed) {
    auto candidate = generate_scenario(seed);
    const auto report = run_scenario(candidate, Mutation::kLeaveByHostOnly);
    if (report.applied && !report.ok) {
      failing = candidate;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no seed in 1..50 triggered the churn-desync fault";

  const auto minimal = shrink(failing, Mutation::kLeaveByHostOnly, 200);
  const auto report = run_scenario(minimal, Mutation::kLeaveByHostOnly);
  EXPECT_FALSE(report.ok) << "shrunk scenario no longer fails";
  EXPECT_LE(minimal.groups.size(), failing.groups.size());
  EXPECT_LE(minimal.events.size(), failing.events.size());

  const auto fixture = to_fixture(minimal);
  EXPECT_NE(fixture.find("TEST(FuzzRepro"), std::string::npos) << fixture;
  EXPECT_NE(fixture.find("run_scenario"), std::string::npos) << fixture;
}

// Oracle semantics pinned directly: the sender's own host never appears in
// the expected set (local delivery bypasses the fabric) and the receiving-VM
// counts mirror co-located membership.
TEST(DeliveryOracle, ExcludesSenderHostAndCountsColocatedVms) {
  const topo::ClosTopology topology{topo::ClosParams::small_test()};
  Controller controller{topology, EncoderConfig{}};
  const std::vector<Member> members{Member{0, 0, MemberRole::kBoth},
                                    Member{0, 1, MemberRole::kReceiver},
                                    Member{2, 2, MemberRole::kReceiver},
                                    Member{2, 3, MemberRole::kReceiver}};
  const auto id = controller.create_group(0, members);

  DeliveryOracle oracle{topology, {}};
  oracle.create_group(members);

  const auto ex = oracle.expect(0, controller.group(id).encoding, 0);
  EXPECT_FALSE(ex.duplicates_allowed);
  ASSERT_EQ(ex.expected_hosts.size(), 1u);
  ASSERT_TRUE(ex.expected_hosts.contains(2));
  EXPECT_EQ(ex.expected_hosts.at(2), 2u);
  // Host 0 still fans out to both local receivers when a copy arrives from
  // some OTHER sender's host.
  EXPECT_EQ(oracle.receiving_vms_on(0, 0), 2u);
}

TEST(DeliveryOracle, FailureMirrorGatesReachability) {
  const topo::ClosTopology topology{topo::ClosParams::small_test()};
  DeliveryOracle oracle{topology, {}};
  EXPECT_TRUE(oracle.failures().empty());
  oracle.fail_spine(0);
  EXPECT_TRUE(oracle.failures().spine_failed(0));
  oracle.restore_spine(0);
  EXPECT_TRUE(oracle.failures().empty());
}

TEST(ScenarioGenerator, IsDeterministicPerSeed) {
  const auto a = generate_scenario(12345);
  const auto b = generate_scenario(12345);
  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind) << i;
    EXPECT_EQ(a.events[i].group_index, b.events[i].group_index) << i;
    EXPECT_EQ(a.events[i].sender, b.events[i].sender) << i;
  }
  const auto c = generate_scenario(12346);
  const bool differs = a.events.size() != c.events.size() ||
                       a.groups.size() != c.groups.size() ||
                       a.seed != c.seed;
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace elmo::verify
