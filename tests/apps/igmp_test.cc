#include "apps/igmp.h"

#include <gtest/gtest.h>

namespace elmo::apps {
namespace {

topo::ClosTopology small() {
  return topo::ClosTopology{topo::ClosParams::small_test()};
}

net::Ipv4Address mcast(const char* a) {
  return net::Ipv4Address::from_string(a);
}

TEST(IgmpMessage, RoundTripWithValidChecksum) {
  IgmpMessage msg;
  msg.type = IgmpMessage::Type::kV2MembershipReport;
  msg.group = mcast("239.1.2.3");
  const auto bytes = msg.serialize();
  ASSERT_EQ(bytes.size(), IgmpMessage::kSize);
  EXPECT_EQ(net::Ipv4Header::checksum(bytes), 0);  // checksums to zero
  const auto parsed = IgmpMessage::parse(bytes);
  EXPECT_EQ(parsed.type, IgmpMessage::Type::kV2MembershipReport);
  EXPECT_EQ(parsed.group, msg.group);
}

TEST(IgmpMessage, RejectsCorruption) {
  IgmpMessage msg;
  msg.group = mcast("239.0.0.9");
  auto bytes = msg.serialize();
  bytes[7] ^= 0x01;  // flip a group bit without fixing the checksum
  EXPECT_THROW(IgmpMessage::parse(bytes), std::invalid_argument);
  bytes[7] ^= 0x01;
  bytes[0] = 0x42;  // unknown type (also breaks checksum)
  EXPECT_THROW(IgmpMessage::parse(bytes), std::invalid_argument);
  EXPECT_THROW(IgmpMessage::parse(std::vector<std::uint8_t>(4, 0)),
               std::invalid_argument);
}

struct IgmpFixture : ::testing::Test {
  IgmpFixture()
      : topology{small()},
        controller{topology, EncoderConfig{}},
        directory{controller, /*tenant=*/7} {}

  std::vector<std::uint8_t> report(const char* group) {
    IgmpMessage msg;
    msg.type = IgmpMessage::Type::kV2MembershipReport;
    msg.group = mcast(group);
    return msg.serialize();
  }
  std::vector<std::uint8_t> leave(const char* group) {
    IgmpMessage msg;
    msg.type = IgmpMessage::Type::kLeaveGroup;
    msg.group = mcast(group);
    return msg.serialize();
  }

  topo::ClosTopology topology;
  Controller controller;
  IgmpDirectory directory;
};

TEST_F(IgmpFixture, ReportCreatesGroupAndJoins) {
  IgmpAgent agent{directory, /*host=*/3};
  EXPECT_FALSE(directory.has_group(mcast("239.9.9.9")));
  EXPECT_TRUE(agent.handle_vm_message(0, report("239.9.9.9")));
  EXPECT_TRUE(directory.has_group(mcast("239.9.9.9")));
  EXPECT_TRUE(agent.is_member(0, mcast("239.9.9.9")));

  const auto id = directory.group_for(mcast("239.9.9.9"));
  const auto& g = controller.group(id);
  ASSERT_EQ(g.members.size(), 1u);
  EXPECT_EQ(g.members[0].host, 3u);
  EXPECT_EQ(g.members[0].role, MemberRole::kReceiver);
}

TEST_F(IgmpFixture, DuplicateReportsAreSuppressed) {
  // IGMP hosts retransmit reports; the controller must see each join once
  // (the "chatty control plane" stays host-local).
  IgmpAgent agent{directory, 3};
  EXPECT_TRUE(agent.handle_vm_message(0, report("239.1.1.1")));
  EXPECT_FALSE(agent.handle_vm_message(0, report("239.1.1.1")));
  EXPECT_FALSE(agent.handle_vm_message(0, report("239.1.1.1")));
  EXPECT_EQ(agent.stats().reports, 3u);
  EXPECT_EQ(agent.stats().duplicate_reports, 2u);
  const auto id = directory.group_for(mcast("239.1.1.1"));
  EXPECT_EQ(controller.group(id).members.size(), 1u);
}

TEST_F(IgmpFixture, LeaveRemovesMembership) {
  IgmpAgent agent{directory, 3};
  agent.handle_vm_message(0, report("239.1.1.1"));
  EXPECT_TRUE(agent.handle_vm_message(0, leave("239.1.1.1")));
  EXPECT_FALSE(agent.is_member(0, mcast("239.1.1.1")));
  const auto id = directory.group_for(mcast("239.1.1.1"));
  EXPECT_TRUE(controller.group(id).members.empty());
  // Leave without join is a no-op, not an error.
  EXPECT_FALSE(agent.handle_vm_message(0, leave("239.1.1.1")));
}

TEST_F(IgmpFixture, MultipleAgentsBuildOneGroup) {
  IgmpAgent a{directory, 0};
  IgmpAgent b{directory, 17};
  IgmpAgent c{directory, 33};
  a.handle_vm_message(0, report("239.5.5.5"));
  b.handle_vm_message(1, report("239.5.5.5"));
  c.handle_vm_message(2, report("239.5.5.5"));

  const auto id = directory.group_for(mcast("239.5.5.5"));
  const auto& g = controller.group(id);
  EXPECT_EQ(g.members.size(), 3u);
  EXPECT_EQ(g.tree->num_members(), 3u);
  EXPECT_TRUE(g.tree->spans_multiple_pods());
}

TEST_F(IgmpFixture, NonMulticastGroupRejected) {
  IgmpAgent agent{directory, 0};
  IgmpMessage msg;
  msg.type = IgmpMessage::Type::kV2MembershipReport;
  msg.group = net::Ipv4Address::from_string("10.0.0.1");
  EXPECT_FALSE(agent.handle_vm_message(0, msg.serialize()));
  EXPECT_EQ(agent.stats().bad_messages, 1u);
}

TEST_F(IgmpFixture, GeneralQueryIsWellFormed) {
  IgmpAgent agent{directory, 0};
  const auto query = agent.general_query();
  const auto parsed = IgmpMessage::parse(query);
  EXPECT_EQ(parsed.type, IgmpMessage::Type::kMembershipQuery);
  EXPECT_EQ(parsed.group.value, 0u);
  // VMs answering the query do not re-trigger controller calls.
  EXPECT_FALSE(agent.handle_vm_message(0, query));
}

TEST_F(IgmpFixture, AddressSpaceIsolationAcrossTenants) {
  // Two tenants pick the SAME multicast address; their groups stay disjoint.
  IgmpDirectory other_directory{controller, /*tenant=*/8};
  IgmpAgent tenant7{directory, 0};
  IgmpAgent tenant8{other_directory, 4};
  tenant7.handle_vm_message(0, report("239.7.7.7"));
  IgmpMessage msg;
  msg.group = mcast("239.7.7.7");
  tenant8.handle_vm_message(0, msg.serialize());

  const auto id7 = directory.group_for(mcast("239.7.7.7"));
  const auto id8 = other_directory.group_for(mcast("239.7.7.7"));
  EXPECT_NE(id7, id8);
  EXPECT_NE(controller.group(id7).address, controller.group(id8).address);
}

}  // namespace
}  // namespace elmo::apps
