#include "apps/telemetry.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace elmo::apps {
namespace {

struct TelemetryFixture : ::testing::Test {
  TelemetryFixture()
      : topology{topo::ClosParams::small_test()},
        controller{topology, elmo::EncoderConfig{}},
        fabric{topology} {}

  std::vector<topo::HostId> collectors(std::size_t n) {
    util::Rng rng{7};
    std::vector<topo::HostId> out;
    for (const auto h : test::random_hosts(topology, n + 1, rng)) {
      if (h != 1 && out.size() < n) out.push_back(h);
    }
    return out;
  }

  topo::ClosTopology topology;
  elmo::Controller controller;
  sim::Fabric fabric;
};

TEST_F(TelemetryFixture, UnicastEgressGrowsLinearly) {
  TelemetrySystem t4{fabric, controller, 1, 1, collectors(4)};
  const auto m4 = t4.run(false, TelemetryConfig{}, 3);
  TelemetrySystem t8{fabric, controller, 1, 1, collectors(8)};
  const auto m8 = t8.run(false, TelemetryConfig{}, 3);
  EXPECT_NEAR(m8.agent_egress_bps / m4.agent_egress_bps, 2.0, 0.01);
}

TEST_F(TelemetryFixture, ElmoEgressStaysNearConstant) {
  TelemetrySystem t2{fabric, controller, 1, 1, collectors(2)};
  const auto m2 = t2.run(true, TelemetryConfig{}, 3);
  TelemetrySystem t16{fabric, controller, 1, 1, collectors(16)};
  const auto m16 = t16.run(true, TelemetryConfig{}, 3);
  // Header grows slightly with group spread, but nothing like 8x.
  EXPECT_LT(m16.agent_egress_bps, m2.agent_egress_bps * 1.6);
}

TEST_F(TelemetryFixture, DatagramsActuallyDelivered) {
  const auto c = collectors(6);
  TelemetrySystem system{fabric, controller, 1, 1, c};
  const auto elmo_metrics = system.run(true, TelemetryConfig{}, 2);
  EXPECT_EQ(elmo_metrics.datagrams_delivered, 2 * c.size());
  const auto unicast_metrics = system.run(false, TelemetryConfig{}, 2);
  EXPECT_EQ(unicast_metrics.datagrams_delivered, 2 * c.size());
}

TEST_F(TelemetryFixture, PerCollectorStreamMatchesPaperCalibration) {
  // ~5.76 Kbps per collector stream (paper: 370.4/64 = 5.79 Kbps).
  TelemetrySystem system{fabric, controller, 1, 1, collectors(1)};
  const auto metrics = system.run(false, TelemetryConfig{}, 1);
  EXPECT_NEAR(metrics.per_collector_ingress_bps, 5760.0, 1.0);
  EXPECT_NEAR(metrics.agent_egress_bps, 5760.0, 1.0);
}

TEST_F(TelemetryFixture, SixtyFourCollectorsMatchesPaperShape) {
  // Paper §5.2.2: 64 collectors -> ~370 Kbps unicast vs ~5.8 Kbps Elmo.
  const auto c = collectors(60);  // small fabric caps us near 64
  TelemetrySystem system{fabric, controller, 1, 1, c};
  const auto uni = system.run(false, TelemetryConfig{}, 1);
  const auto elmo_metrics = system.run(true, TelemetryConfig{}, 1);
  EXPECT_GT(uni.agent_egress_bps, 300'000.0);
  EXPECT_LT(elmo_metrics.agent_egress_bps, 12'000.0);
}

}  // namespace
}  // namespace elmo::apps
