#include "apps/pubsub.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace elmo::apps {
namespace {

struct PubSubFixture : ::testing::Test {
  PubSubFixture()
      : topology{topo::ClosParams::small_test()},
        controller{topology, elmo::EncoderConfig{}},
        fabric{topology} {}

  std::vector<topo::HostId> subscribers(std::size_t n) {
    util::Rng rng{42};
    // Publisher is host 0; subscribers elsewhere.
    std::vector<topo::HostId> subs;
    for (const auto h : test::random_hosts(topology, n + 1, rng)) {
      if (h != 0 && subs.size() < n) subs.push_back(h);
    }
    return subs;
  }

  topo::ClosTopology topology;
  elmo::Controller controller;
  sim::Fabric fabric;
};

TEST_F(PubSubFixture, ElmoDeliversEveryMessageToAllSubscribers) {
  PubSubSystem pubsub{fabric, controller, 5, 0, subscribers(8)};
  const auto metrics =
      pubsub.run(TransportMode::kElmo, 100, 5, HostModel{}, 185'000.0);
  EXPECT_EQ(metrics.messages_sent, 5u);
  EXPECT_EQ(metrics.messages_delivered, 5u);
  EXPECT_EQ(metrics.copies_per_message, 1u);
}

TEST_F(PubSubFixture, UnicastDeliversButMultipliesCopies) {
  PubSubSystem pubsub{fabric, controller, 5, 0, subscribers(8)};
  const auto metrics =
      pubsub.run(TransportMode::kUnicast, 100, 3, HostModel{}, 185'000.0);
  EXPECT_EQ(metrics.messages_delivered, 3u);
  EXPECT_EQ(metrics.copies_per_message, 8u);
  EXPECT_EQ(metrics.messages_sent, 24u);  // 3 messages x 8 copies
}

TEST_F(PubSubFixture, UnicastThroughputCollapsesElmoStaysFlat) {
  // Figure 6 left: unicast rps ~ 1/N, Elmo constant.
  double prev_unicast = 1e18;
  double first_elmo = 0;
  for (const std::size_t n : {1u, 4u, 16u}) {
    PubSubSystem pubsub{fabric, controller, 5, 0, subscribers(n)};
    const auto uni =
        pubsub.run(TransportMode::kUnicast, 100, 1, HostModel{}, 185'000.0);
    const auto elmo =
        pubsub.run(TransportMode::kElmo, 100, 1, HostModel{}, 185'000.0);
    EXPECT_LE(uni.throughput_rps, prev_unicast);
    prev_unicast = uni.throughput_rps;
    if (first_elmo == 0) first_elmo = elmo.throughput_rps;
    EXPECT_DOUBLE_EQ(elmo.throughput_rps, first_elmo);
    EXPECT_LE(uni.throughput_rps, elmo.throughput_rps);
  }
  // At 16 subscribers unicast is an order of magnitude down.
  EXPECT_LT(prev_unicast * 10, first_elmo + 1.0);
}

TEST_F(PubSubFixture, CpuSaturatesOnlyWithUnicast) {
  // Figure 6 right: unicast saturates the publisher CPU; Elmo stays ~5%.
  PubSubSystem pubsub{fabric, controller, 5, 0, subscribers(16)};
  const auto uni =
      pubsub.run(TransportMode::kUnicast, 100, 1, HostModel{}, 185'000.0);
  const auto elmo =
      pubsub.run(TransportMode::kElmo, 100, 1, HostModel{}, 185'000.0);
  EXPECT_NEAR(uni.publisher_cpu_fraction, 1.0, 1e-6);
  EXPECT_NEAR(elmo.publisher_cpu_fraction, 0.049, 0.001);
}

TEST_F(PubSubFixture, SingleSubscriberCalibration) {
  // One subscriber: unicast sustains the calibrated 185K rps.
  PubSubSystem pubsub{fabric, controller, 5, 0, subscribers(1)};
  const auto uni =
      pubsub.run(TransportMode::kUnicast, 100, 1, HostModel{}, 1e9);
  EXPECT_NEAR(uni.throughput_rps, 185'000.0, 1.0);
}

TEST_F(PubSubFixture, NicBoundWhenMessagesAreLarge) {
  PubSubSystem pubsub{fabric, controller, 5, 0, subscribers(4)};
  HostModel model;
  model.nic_bits_per_sec = 1e6;  // throttle the NIC
  const auto metrics =
      pubsub.run(TransportMode::kElmo, 1000, 1, model, 1e9);
  EXPECT_NEAR(metrics.throughput_rps, 1e6 / ((1000 + 50) * 8.0), 1.0);
}

TEST_F(PubSubFixture, GroupRemovedOnDestruction) {
  const auto groups_before = controller.num_groups();
  {
    PubSubSystem pubsub{fabric, controller, 5, 0, subscribers(2)};
    EXPECT_EQ(controller.num_groups(), groups_before + 1);
  }
  EXPECT_EQ(controller.num_groups(), groups_before);
}

}  // namespace
}  // namespace elmo::apps
