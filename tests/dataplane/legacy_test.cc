// Incremental deployment (paper §7): legacy switches forward Elmo packets
// from their group tables without parsing or popping p-rules; receiving
// hypervisors behind them strip the surviving header themselves (signalled
// by the VXLAN Elmo-present flag).
#include <gtest/gtest.h>

#include "dataplane/network_switch.h"
#include "elmo/controller.h"
#include "sim/fabric.h"

namespace elmo::dp {
namespace {

topo::ClosTopology small() {
  return topo::ClosTopology{topo::ClosParams::small_test()};
}

TEST(LegacySwitch, ForwardsFromGroupTableWithoutPopping) {
  const auto t = small();
  Controller controller{t, EncoderConfig{}};
  const std::vector<Member> members{{0, 0, MemberRole::kBoth},
                                    {5, 1, MemberRole::kBoth}};
  const auto id = controller.create_group(0, members);
  const auto& g = controller.group(id);

  // Craft the packet the sender's hypervisor would emit.
  HypervisorSwitch hv{t, 0};
  HypervisorSwitch::GroupFlow flow;
  flow.elmo_header = controller.header_for(id, 0);
  hv.install_flow(g.address, flow);
  auto packet = *hv.encapsulate(g.address, std::vector<std::uint8_t>(64, 1));

  NetworkSwitch legacy{t, topo::Layer::kLeaf, 0};
  legacy.set_legacy(true);
  EXPECT_TRUE(legacy.is_legacy());

  // Without a group-table entry the legacy switch drops.
  EXPECT_TRUE(legacy.process(packet).empty());
  EXPECT_EQ(legacy.stats().drops, 1u);

  net::PortBitmap ports{t.leaf_down_ports()};
  ports.set(1);
  ports.set(2);
  legacy.install_srule(g.address, ports);
  const auto copies = legacy.process(packet);
  ASSERT_EQ(copies.size(), 2u);
  EXPECT_EQ(legacy.stats().srule_matches, 1u);
  for (const auto& copy : copies) {
    // Nothing was popped: byte-identical to the input.
    EXPECT_EQ(copy.packet.size(), packet.size());
  }
}

TEST(LegacySwitch, HypervisorSkipsUnstrippedHeader) {
  const auto t = small();
  Controller controller{t, EncoderConfig{}};
  const std::vector<Member> members{{0, 0, MemberRole::kBoth},
                                    {5, 1, MemberRole::kBoth}};
  const auto id = controller.create_group(0, members);
  const auto& g = controller.group(id);

  HypervisorSwitch sender{t, 0};
  HypervisorSwitch::GroupFlow tx;
  tx.elmo_header = controller.header_for(id, 0);
  sender.install_flow(g.address, tx);
  const auto packet =
      *sender.encapsulate(g.address, std::vector<std::uint8_t>(200, 7));

  HypervisorSwitch receiver{t, 5};
  HypervisorSwitch::GroupFlow rx;
  rx.local_vms = {1};
  receiver.install_flow(g.address, rx);

  // Simulate a legacy leaf: the packet arrives with the Elmo header intact.
  const auto deliveries = receiver.receive(packet);
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].payload_bytes, 200u)
      << "hypervisor must not count the surviving Elmo header as payload";
}

TEST(LegacySwitch, EncoderForcesLegacyLeavesIntoSRules) {
  const auto t = small();
  EncoderConfig cfg;
  const GroupEncoder encoder{t, cfg};
  SRuleSpace space{t, 10};
  std::vector<bool> legacy(t.num_leaves(), false);
  legacy[1] = true;  // hosts 4..7

  const std::vector<topo::HostId> hosts{0, 5, 17};
  const MulticastTree tree{t, hosts};
  const auto enc = encoder.encode(tree, &space, &legacy);

  // Leaf 1 must be an s-rule, never a p-rule.
  bool leaf1_in_prules = false;
  for (const auto& rule : enc.leaf.p_rules) {
    for (const auto rid : rule.switch_ids) {
      if (rid == 1) leaf1_in_prules = true;
    }
  }
  EXPECT_FALSE(leaf1_in_prules);
  const auto srule = std::find_if(
      enc.leaf.s_rules.begin(), enc.leaf.s_rules.end(),
      [](const auto& s) { return s.first == 1; });
  ASSERT_NE(srule, enc.leaf.s_rules.end());
  EXPECT_TRUE(srule->second.test(t.host_port_on_leaf(5)));
}

TEST(LegacySwitch, FullTableIsTheDeploymentBottleneck) {
  const auto t = small();
  const GroupEncoder encoder{t, EncoderConfig{}};
  SRuleSpace space{t, 0};  // legacy leaf's table is already full
  std::vector<bool> legacy(t.num_leaves(), false);
  legacy[1] = true;

  const std::vector<topo::HostId> hosts{0, 5};
  const MulticastTree tree{t, hosts};
  const auto enc = encoder.encode(tree, &space, &legacy);
  // The legacy leaf is neither in p-rules nor s-rules nor the default
  // (which it could not read): its members are unreachable — exactly the
  // paper's "group-table sizes on legacy switches will continue to be a
  // scalability bottleneck".
  EXPECT_TRUE(enc.leaf.s_rules.empty());
  EXPECT_FALSE(enc.leaf.default_rule);
}

TEST(LegacySwitch, EndToEndMixedFabricDelivers) {
  const auto t = small();
  Controller controller{t, EncoderConfig{}};
  std::vector<bool> legacy(t.num_leaves(), false);
  legacy[1] = true;   // leaf 1 legacy (hosts 4..7)
  legacy[8] = true;   // leaf 8 legacy (hosts 32..35)
  controller.set_legacy_leaves(legacy);

  sim::Fabric fabric{t};
  fabric.leaf(1).set_legacy(true);
  fabric.leaf(8).set_legacy(true);

  // Members behind legacy leaves, programmable leaves, across pods.
  const std::vector<topo::HostId> hosts{0, 5, 6, 17, 33};
  std::vector<Member> members;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    members.push_back(Member{hosts[i], static_cast<std::uint32_t>(i),
                             MemberRole::kBoth});
  }
  const auto id = controller.create_group(0, members);
  fabric.install_group(controller, id);

  const auto result = fabric.send(0, controller.group(id).address, 100);
  for (std::size_t i = 1; i < hosts.size(); ++i) {
    EXPECT_EQ(result.host_copies.count(hosts[i]), 1u)
        << "host " << hosts[i];
  }
  EXPECT_EQ(result.vm_deliveries, hosts.size() - 1);

  // Packets into hosts behind legacy leaves still carry the Elmo header.
  const sim::NodeRef legacy_leaf{topo::Layer::kLeaf, 1};
  const sim::NodeRef host5{topo::Layer::kHost, 5};
  const sim::NodeRef prog_leaf{topo::Layer::kLeaf, 4};
  const sim::NodeRef host17{topo::Layer::kHost, 17};
  EXPECT_GT(fabric.links().at({legacy_leaf, host5}).bytes,
            fabric.links().at({prog_leaf, host17}).bytes);
}

}  // namespace
}  // namespace elmo::dp
