// ForwardingElement conformance: both switch types drive through the same
// interface, emissions are refcounted views (not copies), and the arena's
// span/rewind contract holds.
#include "dataplane/forwarding.h"

#include <gtest/gtest.h>

#include "dataplane/hypervisor_switch.h"
#include "dataplane/network_switch.h"
#include "elmo/encoder.h"

namespace elmo::dp {
namespace {

class ForwardingTest : public ::testing::Test {
 protected:
  ForwardingTest()
      : topo_{topo::ClosParams::running_example()}, codec_{topo_} {}

  GroupEncoding encode(const MulticastTree& tree) {
    EncoderConfig cfg;
    cfg.hmax_leaf_override = 8;
    cfg.hmax_spine = 4;
    cfg.redundancy_limit = 2;
    const GroupEncoder encoder{topo_, cfg};
    return encoder.encode(tree, nullptr);
  }

  net::PacketView packet_from(topo::HostId sender, const MulticastTree& tree,
                              std::size_t payload_bytes = 64) {
    const auto enc = encode(tree);
    HypervisorSwitch hv{topo_, sender};
    HypervisorSwitch::GroupFlow flow;
    flow.vni = 1;
    flow.elmo_header = codec_.serialize(tree.sender_encoding(sender), enc);
    hv.install_flow(group_addr_, flow);
    auto packet = hv.encapsulate(
        group_addr_, std::vector<std::uint8_t>(payload_bytes, 0x77));
    return net::PacketView{std::move(*packet)};
  }

  topo::ClosTopology topo_;
  elmo::HeaderCodec codec_;
  net::Ipv4Address group_addr_ = net::Ipv4Address::multicast_group(77);
};

TEST_F(ForwardingTest, BothSwitchTypesDriveThroughTheBaseInterface) {
  const MulticastTree tree{topo_, std::vector<topo::HostId>{0, 1, 2}};
  NetworkSwitch leaf{topo_, topo::Layer::kLeaf, 0};
  HypervisorSwitch hv{topo_, 1};
  HypervisorSwitch::GroupFlow flow;
  flow.vni = 1;
  flow.local_vms = {0};
  hv.install_flow(group_addr_, flow);

  const auto packet = packet_from(0, tree);
  EmissionArena arena;
  for (ForwardingElement* element : {static_cast<ForwardingElement*>(&leaf),
                                     static_cast<ForwardingElement*>(&hv)}) {
    arena.clear();
    const auto emissions =
        element->process(packet, ForwardingElement::kNetworkPort, arena);
    EXPECT_FALSE(emissions.empty());
    EXPECT_EQ(emissions.size(), arena.size());
  }
}

TEST_F(ForwardingTest, SwitchToSwitchEmissionsShareTheSendersBuffer) {
  // Sender 0's leaf emits one local host copy and one uplink copy. The
  // uplink copy must alias the incoming buffer (p-rule pop = cursor
  // arithmetic); the single deep copy is the stripped host template.
  const MulticastTree tree{topo_, std::vector<topo::HostId>{0, 1, 2}};
  NetworkSwitch leaf{topo_, topo::Layer::kLeaf, 0};
  const auto packet = packet_from(0, tree);

  EmissionArena arena;
  net::reset_copy_stats();
  const auto emissions = leaf.process(packet, 0, arena);
  EXPECT_EQ(net::copy_stats().copies, 1u);  // host template only

  ASSERT_EQ(emissions.size(), 2u);
  for (const auto& e : emissions) {
    if (e.out_port >= topo_.leaf_down_ports()) {
      // `packet` + this emission hold the sender's buffer.
      EXPECT_EQ(e.packet.use_count(), 2);
    } else {
      EXPECT_EQ(e.packet.use_count(), 1);  // its own stripped template
    }
  }
}

TEST_F(ForwardingTest, HostEmissionsShareOneStrippedTemplate) {
  // Hosts 2 and 3 live on leaf 1; walk sender 0's packet leaf0 -> spine ->
  // leaf1 and check leaf1 materializes ONE template shared by both hosts.
  const MulticastTree tree{topo_, std::vector<topo::HostId>{0, 2, 3}};
  NetworkSwitch leaf0{topo_, topo::Layer::kLeaf, 0};
  NetworkSwitch leaf1{topo_, topo::Layer::kLeaf, 1};
  const auto packet = packet_from(0, tree);

  EmissionArena arena;
  auto up = leaf0.process(packet, 0, arena);
  ASSERT_EQ(up.size(), 1u);
  const auto up_port = up[0].out_port;
  ASSERT_GE(up_port, topo_.leaf_down_ports());
  NetworkSwitch spine{topo_, topo::Layer::kSpine,
                      topo_.spine_at(0, up_port - topo_.leaf_down_ports())};

  EmissionArena arena2;
  auto down = spine.process(up[0].packet, 0, arena2);
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0].out_port, 1u);  // leaf 1

  EmissionArena arena3;
  net::reset_copy_stats();
  auto host_copies = leaf1.process(down[0].packet, 0, arena3);
  EXPECT_EQ(net::copy_stats().copies, 1u);
  ASSERT_EQ(host_copies.size(), 2u);
  for (const auto& e : host_copies) {
    EXPECT_LT(e.out_port, topo_.leaf_down_ports());
    // Both emissions — and nothing else — hold the one template buffer.
    EXPECT_EQ(e.packet.use_count(), 2);
    EXPECT_EQ(e.packet.size(), net::kOuterHeaderBytes + 64);
  }
}

TEST_F(ForwardingTest, HypervisorEmitsZeroCopyPerVmPayloadViews) {
  const MulticastTree tree{topo_, std::vector<topo::HostId>{0, 1}};
  const std::size_t payload_bytes = 200;
  const auto packet = packet_from(0, tree, payload_bytes);

  HypervisorSwitch hv{topo_, 1};
  HypervisorSwitch::GroupFlow flow;
  flow.vni = 1;
  flow.local_vms = {4, 9};
  hv.install_flow(group_addr_, flow);

  EmissionArena arena;
  net::reset_copy_stats();
  const auto emissions =
      hv.process(packet, ForwardingElement::kNetworkPort, arena);
  EXPECT_EQ(net::copy_stats().copies, 0u);  // decap is a cursor advance
  ASSERT_EQ(emissions.size(), 2u);
  EXPECT_EQ(emissions[0].out_port, 4u);
  EXPECT_EQ(emissions[1].out_port, 9u);
  for (const auto& e : emissions) {
    EXPECT_EQ(e.packet.size(), payload_bytes);
    EXPECT_EQ(e.packet.at(0), 0x77);
    // Input view + two per-VM views share the same buffer.
    EXPECT_EQ(e.packet.use_count(), 3);
  }
}

TEST_F(ForwardingTest, EmissionsOutliveTheInputView) {
  const MulticastTree tree{topo_, std::vector<topo::HostId>{0, 1, 2}};
  NetworkSwitch leaf{topo_, topo::Layer::kLeaf, 0};
  EmissionArena arena;
  {
    const auto packet = packet_from(0, tree);
    leaf.process(packet, 0, arena);
  }  // input view destroyed; refcounts keep the buffers alive
  ASSERT_EQ(arena.size(), 2u);
  for (const auto& e : arena.since(0)) {
    const auto flat = e.packet.materialize();
    EXPECT_EQ(flat.size(), e.packet.size());
  }
}

TEST(EmissionArena, MarkSinceRewind) {
  EmissionArena arena;
  net::PacketView view{net::Packet{std::vector<std::uint8_t>{1, 2, 3}}};
  arena.emit(0, view);
  const auto mark = arena.mark();
  arena.emit(5, view);
  arena.emit(6, view);
  const auto tail = arena.since(mark);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].out_port, 5u);
  EXPECT_EQ(tail[1].out_port, 6u);
  arena.rewind(mark);
  EXPECT_EQ(arena.size(), 1u);
  arena.clear();
  EXPECT_EQ(arena.size(), 0u);
  EXPECT_TRUE(arena.since(0).empty());
}

}  // namespace
}  // namespace elmo::dp
