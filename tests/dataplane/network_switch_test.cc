#include "dataplane/network_switch.h"

#include <gtest/gtest.h>

#include "dataplane/hypervisor_switch.h"
#include "elmo/encoder.h"

namespace elmo::dp {
namespace {

// Fixture around the paper's running example group (Fig. 3).
class NetworkSwitchTest : public ::testing::Test {
 protected:
  NetworkSwitchTest()
      : topo_{topo::ClosParams::running_example()},
        codec_{topo_},
        tree_{topo_, std::vector<topo::HostId>{0, 1, 10, 12, 13, 15}} {}

  // Encodes with generous limits: everything in p-rules.
  GroupEncoding encode(std::size_t hmax_leaf = 8, std::size_t r = 2) {
    EncoderConfig cfg;
    cfg.hmax_leaf_override = hmax_leaf;
    cfg.hmax_spine = 4;
    cfg.redundancy_limit = r;
    const GroupEncoder encoder{topo_, cfg};
    return encoder.encode(tree_, nullptr);
  }

  net::Packet packet_from(topo::HostId sender, const GroupEncoding& enc,
                          std::size_t payload_bytes = 64) {
    HypervisorSwitch hv{topo_, sender};
    HypervisorSwitch::GroupFlow flow;
    flow.vni = 1;
    flow.elmo_header =
        codec_.serialize(tree_.sender_encoding(sender), enc);
    hv.install_flow(group_addr_, flow);
    auto packet = hv.encapsulate(
        group_addr_, std::vector<std::uint8_t>(payload_bytes, 0x77));
    return std::move(*packet);
  }

  std::size_t elmo_bytes_in(const net::Packet& packet) const {
    return codec_.header_length(
        packet.bytes().subspan(net::kOuterHeaderBytes));
  }

  topo::ClosTopology topo_;
  elmo::HeaderCodec codec_;
  elmo::MulticastTree tree_;
  net::Ipv4Address group_addr_ = net::Ipv4Address::multicast_group(77);
};

TEST_F(NetworkSwitchTest, UpstreamLeafDeliversLocallyAndForwardsUp) {
  const auto enc = encode();
  auto packet = packet_from(/*Ha=*/0, enc);
  NetworkSwitch leaf{topo_, topo::Layer::kLeaf, 0};

  const auto copies = leaf.process(packet);
  ASSERT_EQ(copies.size(), 2u);
  // One copy to the local member Hb (port 1), one up a multipath port.
  bool to_host = false;
  bool up = false;
  for (const auto& copy : copies) {
    if (copy.out_port == 1) {
      to_host = true;
      // Host copies carry no Elmo header at all.
      EXPECT_EQ(copy.packet.size(), net::kOuterHeaderBytes + 64);
    } else {
      EXPECT_GE(copy.out_port, topo_.leaf_down_ports());
      up = true;
      // U_LEAF popped: the next section is U_SPINE.
      const auto parsed = codec_.parse(
          copy.packet.bytes().subspan(net::kOuterHeaderBytes));
      EXPECT_FALSE(parsed.u_leaf);
      EXPECT_TRUE(parsed.u_spine);
      EXPECT_LT(elmo_bytes_in(copy.packet), elmo_bytes_in(packet));
    }
  }
  EXPECT_TRUE(to_host);
  EXPECT_TRUE(up);
  EXPECT_EQ(leaf.stats().upstream_matches, 1u);
}

TEST_F(NetworkSwitchTest, UpstreamSpineForwardsToCore) {
  const auto enc = encode();
  auto packet = packet_from(0, enc);
  NetworkSwitch leaf{topo_, topo::Layer::kLeaf, 0};
  auto up_copy = std::move(leaf.process(packet)[1].packet);

  // Deliver to the spine behind that port.
  NetworkSwitch spine{topo_, topo::Layer::kSpine, topo_.spine_at(0, 0)};
  const auto copies = spine.process(up_copy);
  ASSERT_EQ(copies.size(), 1u);  // no same-pod member leaves for Ha
  EXPECT_GE(copies[0].out_port, topo_.spine_down_ports());
  const auto parsed = codec_.parse(
      copies[0].packet.bytes().subspan(net::kOuterHeaderBytes));
  EXPECT_FALSE(parsed.u_spine);
  ASSERT_TRUE(parsed.core_pods);
  EXPECT_EQ(parsed.core_pods->to_string(), "0011");
}

TEST_F(NetworkSwitchTest, CoreFansOutPerPodAndPopsItsSection) {
  const auto enc = encode();
  auto packet = packet_from(0, enc);
  NetworkSwitch leaf{topo_, topo::Layer::kLeaf, 0};
  auto up1 = std::move(leaf.process(packet)[1].packet);
  NetworkSwitch spine{topo_, topo::Layer::kSpine, topo_.spine_at(0, 0)};
  auto up2 = std::move(spine.process(up1)[0].packet);

  NetworkSwitch core{topo_, topo::Layer::kCore, 0};
  const auto copies = core.process(up2);
  ASSERT_EQ(copies.size(), 2u);  // pods 2 and 3
  EXPECT_EQ(copies[0].out_port, 2u);
  EXPECT_EQ(copies[1].out_port, 3u);
  for (const auto& copy : copies) {
    const auto parsed = codec_.parse(
        copy.packet.bytes().subspan(net::kOuterHeaderBytes));
    EXPECT_FALSE(parsed.core_pods);
    EXPECT_FALSE(parsed.spine_rules.empty());
  }
}

TEST_F(NetworkSwitchTest, DownstreamSpineMatchesPodRuleAndPops) {
  const auto enc = encode();
  auto packet = packet_from(0, enc);
  NetworkSwitch leaf{topo_, topo::Layer::kLeaf, 0};
  auto up1 = std::move(leaf.process(packet)[1].packet);
  NetworkSwitch spine0{topo_, topo::Layer::kSpine, topo_.spine_at(0, 0)};
  auto up2 = std::move(spine0.process(up1)[0].packet);
  NetworkSwitch core{topo_, topo::Layer::kCore, 0};
  auto to_pod3 = std::move(core.process(up2)[1].packet);

  NetworkSwitch spine3{topo_, topo::Layer::kSpine, topo_.spine_at(3, 0)};
  const auto copies = spine3.process(to_pod3);
  ASSERT_EQ(copies.size(), 2u);  // L6 and L7
  EXPECT_EQ(spine3.stats().prule_matches, 1u);
  for (const auto& copy : copies) {
    const auto parsed = codec_.parse(
        copy.packet.bytes().subspan(net::kOuterHeaderBytes));
    EXPECT_TRUE(parsed.spine_rules.empty());  // spine layer popped
    EXPECT_FALSE(parsed.leaf_rules.empty());
  }
}

TEST_F(NetworkSwitchTest, DownstreamLeafDeliversAndStrips) {
  const auto enc = encode();
  auto packet = packet_from(0, enc);
  NetworkSwitch leaf0{topo_, topo::Layer::kLeaf, 0};
  auto up1 = std::move(leaf0.process(packet)[1].packet);
  NetworkSwitch spine0{topo_, topo::Layer::kSpine, topo_.spine_at(0, 0)};
  auto up2 = std::move(spine0.process(up1)[0].packet);
  NetworkSwitch core{topo_, topo::Layer::kCore, 0};
  auto to_pod3 = std::move(core.process(up2)[1].packet);
  NetworkSwitch spine3{topo_, topo::Layer::kSpine, topo_.spine_at(3, 0)};
  auto spine_out = spine3.process(to_pod3);

  // First copy goes to leaf index 0 of pod 3 = L6 (hosts Hm, Hn members).
  NetworkSwitch leaf6{topo_, topo::Layer::kLeaf, 6};
  const auto copies = leaf6.process(spine_out[0].packet);
  ASSERT_EQ(copies.size(), 2u);
  for (const auto& copy : copies) {
    EXPECT_LT(copy.out_port, topo_.leaf_down_ports());
    EXPECT_EQ(copy.packet.size(), net::kOuterHeaderBytes + 64);
  }
  EXPECT_EQ(leaf6.stats().prule_matches, 1u);
}

TEST_F(NetworkSwitchTest, SRuleFallbackWhenNoPRuleMatches) {
  // Encode with hmax so small that leaves overflow; install the s-rule and
  // check the group-table path.
  EncoderConfig cfg;
  cfg.hmax_leaf_override = 1;
  cfg.hmax_spine = 4;
  const GroupEncoder encoder{topo_, cfg};
  SRuleSpace space{topo_, 10};
  const auto enc = encoder.encode(tree_, &space);
  ASSERT_FALSE(enc.leaf.s_rules.empty());
  const auto [srule_leaf, srule_bitmap] = enc.leaf.s_rules.front();

  auto packet = packet_from(0, enc);
  // Simulate arrival at the s-ruled leaf with upstream layers popped.
  std::size_t pop = 0;
  for (const auto& s :
       codec_.scan_sections(packet.bytes().subspan(net::kOuterHeaderBytes))) {
    if (s.tag == elmo::SectionTag::kLeafRules ||
        s.tag == elmo::SectionTag::kEnd) {
      pop = s.begin;
      break;
    }
  }
  packet.erase(net::kOuterHeaderBytes, pop);

  NetworkSwitch leaf{topo_, topo::Layer::kLeaf, srule_leaf};
  // Without the s-rule installed: no p-rule match; may hit default or drop.
  NetworkSwitch bare{topo_, topo::Layer::kLeaf, srule_leaf};
  const auto before = bare.process(packet);
  EXPECT_EQ(bare.stats().srule_matches, 0u);

  leaf.install_srule(group_addr_, srule_bitmap);
  const auto copies = leaf.process(packet);
  EXPECT_EQ(leaf.stats().srule_matches, 1u);
  EXPECT_EQ(copies.size(), srule_bitmap.popcount());
}

TEST_F(NetworkSwitchTest, DropWhenNothingMatches) {
  const auto enc = encode();
  auto packet = packet_from(0, enc);
  // Pop everything up to the leaf section, then hand to a leaf that is not
  // in the tree and has no s-rule; encoding has no default (generous hmax).
  const auto sections =
      codec_.scan_sections(packet.bytes().subspan(net::kOuterHeaderBytes));
  for (const auto& s : sections) {
    if (s.tag == elmo::SectionTag::kLeafRules) {
      packet.erase(net::kOuterHeaderBytes, s.begin);
      break;
    }
  }
  NetworkSwitch outsider{topo_, topo::Layer::kLeaf, 3};
  EXPECT_TRUE(outsider.process(packet).empty());
  EXPECT_EQ(outsider.stats().drops, 1u);
}

TEST_F(NetworkSwitchTest, RejectsNonIpv4) {
  NetworkSwitch leaf{topo_, topo::Layer::kLeaf, 0};
  net::Packet junk = net::Packet::of_size(60);
  EXPECT_THROW(leaf.process(junk), std::invalid_argument);
}

TEST_F(NetworkSwitchTest, SRuleTableLifecycle) {
  NetworkSwitch leaf{topo_, topo::Layer::kLeaf, 0};
  net::PortBitmap ports{topo_.leaf_down_ports()};
  ports.set(0);
  leaf.install_srule(group_addr_, ports);
  EXPECT_EQ(leaf.srule_count(), 1u);
  leaf.remove_srule(group_addr_);
  EXPECT_EQ(leaf.srule_count(), 0u);
}

}  // namespace
}  // namespace elmo::dp
