// Multipath schemes behind the Elmo multipath flag (paper D2b: ECMP, or a
// HULA/CONGA-style utilization-aware choice).
#include <gtest/gtest.h>

#include "dataplane/hypervisor_switch.h"
#include "dataplane/network_switch.h"
#include "elmo/controller.h"

namespace elmo::dp {
namespace {

topo::ClosTopology small() {
  return topo::ClosTopology{topo::ClosParams::small_test()};
}

// Builds an upstream multicast packet from `sender` for a cross-pod group.
net::Packet upstream_packet(const topo::ClosTopology& t,
                            Controller& controller, elmo::GroupId id,
                            topo::HostId sender) {
  const auto& g = controller.group(id);
  HypervisorSwitch hv{t, sender};
  HypervisorSwitch::GroupFlow flow;
  flow.elmo_header = controller.header_for(id, sender);
  hv.install_flow(g.address, flow);
  return *hv.encapsulate(g.address, std::vector<std::uint8_t>(64, 0));
}

struct MultipathFixture : ::testing::Test {
  MultipathFixture() : topology{small()}, controller{topology, EncoderConfig{}} {
    // Cross-pod group whose senders all live under leaf 0 (hosts 0..3).
    std::vector<Member> members;
    for (std::uint32_t i = 0; i < 4; ++i) {
      members.push_back(Member{i, i, MemberRole::kSender});
    }
    members.push_back(Member{17, 4, MemberRole::kReceiver});
    members.push_back(Member{33, 5, MemberRole::kReceiver});
    group = controller.create_group(0, members);
  }

  topo::ClosTopology topology;
  Controller controller;
  elmo::GroupId group = 0;
};

TEST_F(MultipathFixture, EcmpIsDeterministicPerFlow) {
  NetworkSwitch leaf{topology, topo::Layer::kLeaf, 0};
  ASSERT_EQ(leaf.multipath_mode(), MultipathMode::kEcmp);
  const auto packet = upstream_packet(topology, controller, group, 0);
  const auto first = leaf.process(packet);
  const auto second = leaf.process(packet);
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(first[0].out_port, second[0].out_port);  // same flow, same path
}

TEST_F(MultipathFixture, LeastLoadedAlternatesUplinks) {
  NetworkSwitch leaf{topology, topo::Layer::kLeaf, 0};
  leaf.set_multipath_mode(MultipathMode::kLeastLoaded);
  const auto packet = upstream_packet(topology, controller, group, 0);
  // The same flow, repeated: the HULA-style switch balances both uplinks.
  for (int i = 0; i < 10; ++i) leaf.process(packet);
  const auto load0 = leaf.uplink_load(0);
  const auto load1 = leaf.uplink_load(1);
  EXPECT_GT(load0, 0u);
  EXPECT_GT(load1, 0u);
  const auto hi = std::max(load0, load1);
  const auto lo = std::min(load0, load1);
  EXPECT_LE(hi - lo, hi / 4);  // near-even split
}

TEST_F(MultipathFixture, LeastLoadedBeatsEcmpOnSkewedFlows) {
  // Four senders whose ECMP hashes may collide; least-loaded never lets one
  // uplink carry more than ~half the bytes (+1 packet of slack).
  NetworkSwitch ecmp_leaf{topology, topo::Layer::kLeaf, 0};
  NetworkSwitch hula_leaf{topology, topo::Layer::kLeaf, 0};
  hula_leaf.set_multipath_mode(MultipathMode::kLeastLoaded);

  std::uint64_t total = 0;
  for (topo::HostId sender = 0; sender < 4; ++sender) {
    const auto packet = upstream_packet(topology, controller, group, sender);
    for (int i = 0; i < 5; ++i) {
      ecmp_leaf.process(packet);
      hula_leaf.process(packet);
      total += packet.size();
    }
  }
  const auto hula_max =
      std::max(hula_leaf.uplink_load(0), hula_leaf.uplink_load(1));
  const auto ecmp_max =
      std::max(ecmp_leaf.uplink_load(0), ecmp_leaf.uplink_load(1));
  EXPECT_LE(hula_max, total / 2 + 200);
  EXPECT_LE(hula_max, ecmp_max);  // never worse than hashing
}

TEST_F(MultipathFixture, ExplicitUplinksBypassMultipathMode) {
  // Failure-path headers with explicit upstream ports ignore the scheme.
  controller.fail_spine(topology.spine_at(0, 0));
  NetworkSwitch leaf{topology, topo::Layer::kLeaf, 0};
  leaf.set_multipath_mode(MultipathMode::kLeastLoaded);
  const auto packet = upstream_packet(topology, controller, group, 0);
  for (int i = 0; i < 6; ++i) {
    const auto copies = leaf.process(packet);
    for (const auto& copy : copies) {
      if (copy.out_port >= topology.leaf_down_ports()) {
        // Only the alive plane-1 spine may be used.
        EXPECT_EQ(copy.out_port, topology.leaf_down_ports() + 1);
      }
    }
  }
  EXPECT_EQ(leaf.uplink_load(0), 0u);
}

}  // namespace
}  // namespace elmo::dp
