#include "dataplane/hypervisor_switch.h"

#include <gtest/gtest.h>

#include "dataplane/common.h"

namespace elmo::dp {
namespace {

topo::ClosTopology small() {
  return topo::ClosTopology{topo::ClosParams::small_test()};
}

TEST(HypervisorSwitch, EncapRequiresFlow) {
  const auto t = small();
  HypervisorSwitch hv{t, 3};
  const std::vector<std::uint8_t> payload{1, 2, 3};
  EXPECT_FALSE(hv.encapsulate(net::Ipv4Address::multicast_group(0), payload));
  EXPECT_EQ(hv.stats().sent, 0u);
}

TEST(HypervisorSwitch, EncapBuildsParseableOuterHeaders) {
  const auto t = small();
  HypervisorSwitch hv{t, 3};
  const auto group = net::Ipv4Address::multicast_group(9);
  HypervisorSwitch::GroupFlow flow;
  flow.vni = 42;
  flow.elmo_header = {0xaa, 0xbb, 0xcc};
  hv.install_flow(group, flow);

  const std::vector<std::uint8_t> payload{9, 8, 7, 6};
  const auto packet = hv.encapsulate(group, payload);
  ASSERT_TRUE(packet);
  EXPECT_EQ(packet->size(), net::kOuterHeaderBytes + 3 + 4);

  const auto bytes = packet->bytes();
  const auto eth = net::EthernetHeader::parse(bytes);
  EXPECT_EQ(eth.ether_type, net::kEtherTypeIpv4);
  EXPECT_EQ(eth.src, host_mac(3));

  const auto ip = net::Ipv4Header::parse(bytes.subspan(14));
  EXPECT_EQ(ip.dst, group);
  EXPECT_EQ(ip.src, host_address(3));
  EXPECT_EQ(ip.total_length, 20 + 8 + 8 + 3 + 4);

  const auto udp = net::UdpHeader::parse(bytes.subspan(34));
  EXPECT_EQ(udp.dst_port, net::kVxlanUdpPort);

  const auto vxlan = net::VxlanHeader::parse(bytes.subspan(42));
  EXPECT_EQ(vxlan.vni, 42u);

  // Elmo template follows the outer headers verbatim.
  EXPECT_EQ(bytes[50], 0xaa);
  EXPECT_EQ(bytes[51], 0xbb);
  EXPECT_EQ(bytes[52], 0xcc);
  // Payload after the template.
  EXPECT_EQ(bytes[53], 9);
  EXPECT_EQ(hv.stats().sent, 1u);
}

TEST(HypervisorSwitch, ReceiveDeliversToLocalMembers) {
  const auto t = small();
  HypervisorSwitch sender{t, 0};
  HypervisorSwitch receiver{t, 1};
  const auto group = net::Ipv4Address::multicast_group(5);

  HypervisorSwitch::GroupFlow tx_flow;
  tx_flow.vni = 7;
  sender.install_flow(group, tx_flow);

  HypervisorSwitch::GroupFlow rx_flow;
  rx_flow.vni = 7;
  rx_flow.local_vms = {11, 12};
  receiver.install_flow(group, rx_flow);

  const std::vector<std::uint8_t> payload(100, 0x55);
  const auto packet = sender.encapsulate(group, payload);
  ASSERT_TRUE(packet);

  const auto deliveries = receiver.receive(*packet);
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].vm, 11u);
  EXPECT_EQ(deliveries[1].vm, 12u);
  EXPECT_EQ(deliveries[0].payload_bytes, 100u);
  EXPECT_EQ(receiver.stats().delivered_to_vms, 2u);
}

TEST(HypervisorSwitch, ReceiveDiscardsNonMemberGroups) {
  const auto t = small();
  HypervisorSwitch sender{t, 0};
  HypervisorSwitch bystander{t, 2};
  const auto group = net::Ipv4Address::multicast_group(5);
  HypervisorSwitch::GroupFlow tx_flow;
  sender.install_flow(group, tx_flow);

  const auto packet =
      sender.encapsulate(group, std::vector<std::uint8_t>{1});
  ASSERT_TRUE(packet);
  EXPECT_TRUE(bystander.receive(*packet).empty());
  EXPECT_EQ(bystander.stats().discarded, 1u);
}

TEST(HypervisorSwitch, FlowLifecycle) {
  const auto t = small();
  HypervisorSwitch hv{t, 0};
  const auto group = net::Ipv4Address::multicast_group(1);
  EXPECT_FALSE(hv.has_flow(group));
  hv.install_flow(group, HypervisorSwitch::GroupFlow{});
  EXPECT_TRUE(hv.has_flow(group));
  EXPECT_EQ(hv.flow_count(), 1u);
  hv.remove_flow(group);
  EXPECT_FALSE(hv.has_flow(group));
}

}  // namespace
}  // namespace elmo::dp
