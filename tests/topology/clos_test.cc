#include "topology/clos.h"

#include <gtest/gtest.h>

namespace elmo::topo {
namespace {

class ClosMapping : public ::testing::TestWithParam<ClosParams> {};

TEST_P(ClosMapping, EntityCountsConsistent) {
  const ClosTopology t{GetParam()};
  const auto& p = t.params();
  EXPECT_EQ(t.num_leaves(), p.pods * p.leaves_per_pod);
  EXPECT_EQ(t.num_spines(), p.pods * p.spines_per_pod);
  EXPECT_EQ(t.num_cores(), p.spines_per_pod * p.cores_per_plane);
  EXPECT_EQ(t.num_hosts(), t.num_leaves() * p.hosts_per_leaf);
  EXPECT_EQ(t.num_switches(),
            t.num_leaves() + t.num_spines() + t.num_cores());
}

TEST_P(ClosMapping, HostLeafBijection) {
  const ClosTopology t{GetParam()};
  for (HostId h = 0; h < t.num_hosts(); ++h) {
    const auto leaf = t.leaf_of_host(h);
    const auto port = t.host_port_on_leaf(h);
    EXPECT_EQ(t.host_at(leaf, port), h);
    EXPECT_LT(port, t.leaf_down_ports());
  }
}

TEST_P(ClosMapping, LeafPodBijection) {
  const ClosTopology t{GetParam()};
  for (LeafId l = 0; l < t.num_leaves(); ++l) {
    const auto pod = t.pod_of_leaf(l);
    const auto index = t.leaf_index_in_pod(l);
    EXPECT_EQ(t.leaf_at(pod, index), l);
    EXPECT_LT(index, t.spine_down_ports());
  }
}

TEST_P(ClosMapping, SpineCoordinates) {
  const ClosTopology t{GetParam()};
  for (SpineId s = 0; s < t.num_spines(); ++s) {
    EXPECT_EQ(t.spine_at(t.pod_of_spine(s), t.plane_of_spine(s)), s);
  }
}

TEST_P(ClosMapping, CoreCoordinates) {
  const ClosTopology t{GetParam()};
  for (CoreId c = 0; c < t.num_cores(); ++c) {
    EXPECT_EQ(t.core_at(t.plane_of_core(c), t.core_index_in_plane(c)), c);
  }
}

TEST_P(ClosMapping, SpineCoreWiringIsMutual) {
  const ClosTopology t{GetParam()};
  for (SpineId s = 0; s < t.num_spines(); ++s) {
    for (std::size_t up = 0; up < t.spine_up_ports(); ++up) {
      const auto core = t.core_behind_spine_port(s, up);
      // The core's port towards this spine's pod leads back to this spine.
      EXPECT_EQ(t.spine_behind_core_port(core, t.pod_of_spine(s)), s);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ClosMapping,
    ::testing::Values(ClosParams::running_example(), ClosParams::small_test(),
                      ClosParams{.pods = 3,
                                 .leaves_per_pod = 5,
                                 .spines_per_pod = 3,
                                 .cores_per_plane = 4,
                                 .hosts_per_leaf = 7}));

TEST(ClosTopology, FacebookFabricScale) {
  const ClosTopology t{ClosParams::facebook_fabric()};
  EXPECT_EQ(t.num_hosts(), 27'648u);
  EXPECT_EQ(t.num_leaves(), 576u);
  EXPECT_EQ(t.num_pods(), 12u);
  EXPECT_EQ(t.leaf_id_bits(), 10u);
  EXPECT_EQ(t.pod_id_bits(), 4u);
}

TEST(ClosTopology, RejectsDegenerateParams) {
  EXPECT_THROW(ClosTopology(ClosParams{.pods = 0}), std::out_of_range);
  EXPECT_THROW(ClosTopology(ClosParams{.hosts_per_leaf = 0}),
               std::out_of_range);
}

TEST(ClosTopology, OutOfRangeQueriesThrow) {
  const ClosTopology t{ClosParams::small_test()};
  EXPECT_THROW(t.leaf_of_host(t.num_hosts()), std::out_of_range);
  EXPECT_THROW(t.spine_at(t.num_pods(), 0), std::out_of_range);
  EXPECT_THROW(t.host_at(0, t.leaf_down_ports()), std::out_of_range);
}

TEST(FailureSet, TracksAndRestores) {
  FailureSet f;
  EXPECT_TRUE(f.empty());
  f.fail_spine(3);
  f.fail_core(1);
  EXPECT_FALSE(f.empty());
  EXPECT_TRUE(f.spine_failed(3));
  EXPECT_FALSE(f.spine_failed(4));
  EXPECT_TRUE(f.core_failed(1));
  f.fail_spine(3);  // idempotent
  EXPECT_EQ(f.failed_spines().size(), 1u);
  f.restore_spine(3);
  f.restore_core(1);
  EXPECT_TRUE(f.empty());
}

TEST(Layer, ToString) {
  EXPECT_EQ(to_string(Layer::kHost), "host");
  EXPECT_EQ(to_string(Layer::kLeaf), "leaf");
  EXPECT_EQ(to_string(Layer::kSpine), "spine");
  EXPECT_EQ(to_string(Layer::kCore), "core");
}

}  // namespace
}  // namespace elmo::topo
