#include "topology/xpander.h"

#include <gtest/gtest.h>

#include <deque>

namespace elmo::topo {
namespace {

TEST(Xpander, NearRegularDegree) {
  util::Rng rng{5};
  const XpanderTopology x{64, 6, 8, rng};
  EXPECT_EQ(x.num_switches(), 64u);
  EXPECT_EQ(x.num_hosts(), 512u);
  for (std::size_t sw = 0; sw < x.num_switches(); ++sw) {
    // Matchings can occasionally skip a node pair; degree is <= d and close.
    EXPECT_LE(x.neighbors(sw).size(), 6u);
    EXPECT_GE(x.neighbors(sw).size(), 4u);
  }
}

TEST(Xpander, GraphIsConnected) {
  util::Rng rng{7};
  const XpanderTopology x{128, 8, 4, rng};
  const auto parents = x.bfs_parents(0);
  for (std::size_t sw = 0; sw < x.num_switches(); ++sw) {
    EXPECT_NE(parents[sw], ~0u) << "switch " << sw << " unreachable";
  }
}

TEST(Xpander, RejectsBadParameters) {
  util::Rng rng{9};
  EXPECT_THROW(XpanderTopology(4, 0, 1, rng), std::invalid_argument);
  EXPECT_THROW(XpanderTopology(4, 4, 1, rng), std::invalid_argument);
  EXPECT_THROW(XpanderTopology(5, 2, 1, rng), std::invalid_argument);
}

TEST(Xpander, TreeCoversAllMemberSwitches) {
  util::Rng rng{11};
  const XpanderTopology x{64, 6, 8, rng};
  const std::vector<std::size_t> members{3, 77, 200, 411, 500};
  const auto tree = x.multicast_tree(0, members);

  // Every member's ToR must appear with at least one used port.
  for (const auto m : members) {
    const auto sw = x.switch_of_host(m);
    const bool found = std::any_of(
        tree.begin(), tree.end(),
        [&](const auto& e) { return e.switch_id == sw && e.ports_used > 0; });
    EXPECT_TRUE(found) << "member host " << m;
  }
}

TEST(Xpander, HeaderBitsGrowWithGroupSize) {
  util::Rng rng{13};
  const XpanderTopology x{576, 24, 48, rng};  // ~27k hosts, the paper's note
  std::vector<std::size_t> small_group;
  std::vector<std::size_t> large_group;
  for (std::size_t i = 1; i <= 10; ++i) small_group.push_back(i * 97);
  for (std::size_t i = 1; i <= 200; ++i) large_group.push_back(i * 113 % x.num_hosts());

  const auto small_bits = x.header_bits_for_tree(0, small_group);
  const auto large_bits = x.header_bits_for_tree(0, large_group);
  EXPECT_LT(small_bits, large_bits);
  EXPECT_GT(small_bits, 0u);
}

TEST(Xpander, SenderOnlyGroupHasRootEntry) {
  util::Rng rng{17};
  const XpanderTopology x{16, 4, 2, rng};
  const auto tree = x.multicast_tree(0, {0});  // only the sender itself
  ASSERT_FALSE(tree.empty());
}

}  // namespace
}  // namespace elmo::topo
