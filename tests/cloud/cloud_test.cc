#include "cloud/cloud.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

namespace elmo::cloud {
namespace {

class CloudPlacement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CloudPlacement, RespectsHostCapacityAndTenantSpread) {
  const topo::ClosTopology topology{topo::ClosParams::small_test()};
  util::Rng rng{101};
  CloudParams params = CloudParams::small_test();
  params.colocation = GetParam();
  const Cloud cloud{topology, params, rng};

  std::unordered_map<topo::HostId, std::size_t> load;
  for (const auto& tenant : cloud.tenants()) {
    std::set<topo::HostId> tenant_hosts;
    for (const auto host : tenant.vm_hosts) {
      ASSERT_LT(host, topology.num_hosts());
      // A tenant's VMs never share a physical host.
      EXPECT_TRUE(tenant_hosts.insert(host).second)
          << "tenant " << tenant.id << " has two VMs on host " << host;
      ++load[host];
    }
  }
  for (const auto& [host, vms] : load) {
    EXPECT_LE(vms, params.max_vms_per_host);
    EXPECT_EQ(vms, cloud.vms_on_host(host));
  }
}

INSTANTIATE_TEST_SUITE_P(ColocationSweep, CloudPlacement,
                         ::testing::Values(1u, 2u, 12u));

TEST(Cloud, TenantSizesWithinConfiguredBounds) {
  const topo::ClosTopology topology{topo::ClosParams::small_test()};
  util::Rng rng{103};
  const auto params = CloudParams::small_test();
  const Cloud cloud{topology, params, rng};
  ASSERT_EQ(cloud.tenants().size(), params.tenants);
  double total = 0;
  for (const auto& tenant : cloud.tenants()) {
    EXPECT_GE(tenant.size(), params.min_vms_per_tenant);
    EXPECT_LE(tenant.size(), params.max_vms_per_tenant);
    total += static_cast<double>(tenant.size());
  }
  const double mean = total / static_cast<double>(params.tenants);
  // Exponential with the configured mean, loosely.
  EXPECT_GT(mean, params.mean_vms_per_tenant * 0.6);
  EXPECT_LT(mean, params.mean_vms_per_tenant * 1.4);
  EXPECT_EQ(cloud.total_vms(), static_cast<std::size_t>(total));
}

TEST(Cloud, DispersedPlacementSpreadsAcrossLeaves) {
  // With P=1 a tenant lands on (close to) as many leaves as it has VMs.
  const topo::ClosTopology topology{topo::ClosParams::small_test()};
  util::Rng rng{107};
  CloudParams params = CloudParams::small_test();
  params.tenants = 10;
  params.colocation = 1;
  const Cloud cloud{topology, params, rng};
  for (const auto& tenant : cloud.tenants()) {
    std::set<topo::LeafId> leaves;
    for (const auto host : tenant.vm_hosts) {
      leaves.insert(topology.leaf_of_host(host));
    }
    // 16 leaves available; small tenants should never double up much.
    EXPECT_GE(leaves.size() * 2, tenant.size());
  }
}

TEST(Cloud, ThrowsWhenCapacityExhausted) {
  const topo::ClosTopology topology{
      topo::ClosParams{.pods = 1,
                       .leaves_per_pod = 1,
                       .spines_per_pod = 1,
                       .cores_per_plane = 1,
                       .hosts_per_leaf = 2}};
  util::Rng rng{109};
  CloudParams params;
  params.tenants = 1;
  params.min_vms_per_tenant = 10;  // 10 VMs but only 2 hosts (distinct-host rule)
  params.mean_vms_per_tenant = 10;
  params.max_vms_per_tenant = 10;
  EXPECT_THROW(Cloud(topology, params, rng), std::runtime_error);
}

TEST(WveSampler, MatchesTraceStatistics) {
  util::Rng rng{211};
  constexpr int kSamples = 200'000;
  double sum = 0;
  int le61 = 0;
  int gt700 = 0;
  std::size_t min_seen = ~0ull;
  for (int i = 0; i < kSamples; ++i) {
    const auto size = sample_wve_group_size(rng);
    sum += static_cast<double>(size);
    if (size <= 61) ++le61;
    if (size > 700) ++gt700;
    min_seen = std::min(min_seen, size);
  }
  EXPECT_NEAR(sum / kSamples, 60.0, 4.0);              // paper: avg 60
  EXPECT_NEAR(le61 / double(kSamples), 0.80, 0.02);    // ~80% <= 61
  EXPECT_NEAR(gt700 / double(kSamples), 0.006, 0.002); // ~0.6% > 700
  EXPECT_GE(min_seen, 5u);                             // min group size 5
}

TEST(GroupWorkload, ExactGroupCountAndValidMembers) {
  const topo::ClosTopology topology{topo::ClosParams::small_test()};
  util::Rng rng{223};
  const Cloud cloud{topology, CloudParams::small_test(), rng};
  WorkloadParams wp;
  wp.total_groups = 500;
  wp.min_group_size = 3;
  const GroupWorkload workload{cloud, wp, rng};
  ASSERT_EQ(workload.groups().size(), 500u);
  for (const auto& group : workload.groups()) {
    const auto& tenant = cloud.tenants()[group.tenant];
    EXPECT_GE(group.size(), wp.min_group_size);
    EXPECT_LE(group.size(), tenant.size());
    std::set<std::uint32_t> vms;
    for (std::size_t i = 0; i < group.size(); ++i) {
      const auto vm = group.member_vms[i];
      EXPECT_TRUE(vms.insert(vm).second) << "duplicate member";
      EXPECT_EQ(group.member_hosts[i], tenant.vm_hosts[vm]);
    }
  }
}

TEST(GroupWorkload, GroupsProportionalToTenantSize) {
  const topo::ClosTopology topology{topo::ClosParams::small_test()};
  util::Rng rng{227};
  CloudParams cp = CloudParams::small_test();
  cp.tenants = 20;
  const Cloud cloud{topology, cp, rng};
  WorkloadParams wp;
  wp.total_groups = 2000;
  wp.min_group_size = 3;
  const GroupWorkload workload{cloud, wp, rng};

  std::unordered_map<TenantId, std::size_t> per_tenant;
  for (const auto& group : workload.groups()) ++per_tenant[group.tenant];

  // Find the largest and smallest eligible tenants and compare shares.
  const Tenant* largest = nullptr;
  const Tenant* smallest = nullptr;
  for (const auto& tenant : cloud.tenants()) {
    if (tenant.size() < wp.min_group_size) continue;
    if (largest == nullptr || tenant.size() > largest->size()) {
      largest = &tenant;
    }
    if (smallest == nullptr || tenant.size() < smallest->size()) {
      smallest = &tenant;
    }
  }
  ASSERT_NE(largest, nullptr);
  if (largest->size() > 2 * smallest->size()) {
    EXPECT_GE(per_tenant[largest->id], per_tenant[smallest->id]);
  }
}

TEST(GroupWorkload, UniformDistributionSpansTenant) {
  const topo::ClosTopology topology{topo::ClosParams::small_test()};
  util::Rng rng{229};
  const Cloud cloud{topology, CloudParams::small_test(), rng};
  WorkloadParams wp;
  wp.total_groups = 1000;
  wp.min_group_size = 3;
  wp.size_dist = GroupSizeDist::kUniform;
  const GroupWorkload workload{cloud, wp, rng};
  // With a uniform draw we should regularly see full-tenant groups.
  std::size_t full = 0;
  for (const auto& group : workload.groups()) {
    if (group.size() == cloud.tenants()[group.tenant].size()) ++full;
  }
  EXPECT_GT(full, 0u);
}

}  // namespace
}  // namespace elmo::cloud
