#include "p4gen/p4gen.h"

#include <gtest/gtest.h>

#include "elmo/encoder.h"

namespace elmo::p4gen {
namespace {

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (auto at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

topo::ClosTopology fabric() {
  return topo::ClosTopology{topo::ClosParams::facebook_fabric()};
}

TEST(P4Options, DerivesFromEncoderConfig) {
  const auto t = fabric();
  EncoderConfig cfg;
  const GroupEncoder encoder{t, cfg};
  const auto opt = P4Options::from_config(cfg, encoder.hmax_leaf());
  EXPECT_EQ(opt.hmax_spine, cfg.hmax_spine);
  EXPECT_EQ(opt.hmax_leaf, encoder.hmax_leaf());
  EXPECT_EQ(opt.kmax, cfg.kmax);
}

TEST(P4Widths, MatchTopology) {
  const auto t = fabric();
  const auto w = P4Widths::of(t);
  EXPECT_EQ(w.leaf_ports, 48u);
  EXPECT_EQ(w.leaf_up_ports, 4u);
  EXPECT_EQ(w.spine_ports, 48u);
  EXPECT_EQ(w.core_ports, 12u);
  EXPECT_EQ(w.leaf_id_bits, 10u);
  EXPECT_EQ(w.pod_id_bits, 4u);
}

TEST(NetworkProgram, ContainsPipelineSkeleton) {
  const auto t = fabric();
  P4Options opt;
  const auto p4 = network_switch_program(t, opt);
  EXPECT_NE(p4.find("parser ElmoParser"), std::string::npos);
  EXPECT_NE(p4.find("control ElmoIngress"), std::string::npos);
  EXPECT_NE(p4.find("control ElmoEgress"), std::string::npos);
  EXPECT_NE(p4.find("table group_table"), std::string::npos);
  EXPECT_NE(p4.find("bitmap_port_select"), std::string::npos);
  EXPECT_NE(p4.find("#include <v1model.p4>"), std::string::npos);
}

TEST(NetworkProgram, UnrollsOneParserStatePerPRule) {
  const auto t = fabric();
  P4Options opt;
  opt.hmax_leaf = 30;
  opt.hmax_spine = 6;
  const auto p4 = network_switch_program(t, opt);
  // 30 leaf rule states plus extraction of each slot in the header struct.
  EXPECT_EQ(count_occurrences(p4, "state parse_leaf_rule_"), 30u);
  EXPECT_EQ(count_occurrences(p4, "state parse_spine_rule_"), 6u);
  EXPECT_NE(p4.find("leaf_rule_29"), std::string::npos);
  EXPECT_EQ(p4.find("leaf_rule_30;"), std::string::npos);
}

TEST(NetworkProgram, BitWidthsFollowTopology) {
  // A different fabric shape must change the generated widths.
  const topo::ClosTopology small{topo::ClosParams::small_test()};
  P4Options opt;
  const auto p4 = network_switch_program(small, opt);
  // 4 host ports per leaf -> bit<4> bitmaps; 16 leaves -> bit<4> ids.
  EXPECT_NE(p4.find("bit<4> down_ports;"), std::string::npos);
  EXPECT_NE(p4.find("bit<4> pod_bitmap;"), std::string::npos);

  const auto big = network_switch_program(
      topo::ClosTopology{topo::ClosParams::facebook_fabric()}, opt);
  EXPECT_NE(big.find("bit<48> down_ports;"), std::string::npos);
  EXPECT_NE(big.find("bit<12> pod_bitmap;"), std::string::npos);
  EXPECT_NE(big.find("bit<10> id0;"), std::string::npos);
}

TEST(NetworkProgram, ParserDoesTheMatchAndSet) {
  const auto p4 = network_switch_program(fabric(), P4Options{});
  // The Appendix-A point: identifier comparison happens in parser states,
  // not in a match-action table.
  EXPECT_NE(p4.find("id0 == SWITCH_ID && meta.matched == 0"),
            std::string::npos);
  // The only match-action table is the s-rule group table ("table <name>"
  // at the start of a declaration line).
  EXPECT_EQ(count_occurrences(p4, "\n    table "), 1u);
  EXPECT_NE(p4.find("table group_table"), std::string::npos);
}

TEST(NetworkProgram, EgressInvalidatesConsumedSections) {
  const auto p4 = network_switch_program(fabric(), P4Options{});
  EXPECT_NE(p4.find("hdr.u_leaf.setInvalid()"), std::string::npos);
  EXPECT_NE(p4.find("hdr.vxlan.elmo_present = 0;"), std::string::npos);
  // Host-bound copies invalidate every leaf rule slot.
  EXPECT_GE(count_occurrences(p4, ".setInvalid();"),
            P4Options{}.hmax_leaf + P4Options{}.hmax_spine);
}

TEST(NetworkProgram, GroupTableSizeConfigurable) {
  P4Options opt;
  opt.group_table_size = 5000;
  const auto p4 = network_switch_program(fabric(), opt);
  EXPECT_NE(p4.find("size = 5000;"), std::string::npos);
}

TEST(HypervisorProgram, SingleBlobEncap) {
  const auto p4 = hypervisor_switch_program(fabric(), P4Options{});
  EXPECT_NE(p4.find("header elmo_blob_t"), std::string::npos);
  EXPECT_NE(p4.find("varbit<"), std::string::npos);
  EXPECT_NE(p4.find("table group_flows"), std::string::npos);
  EXPECT_NE(p4.find("encap_and_send"), std::string::npos);
  EXPECT_NE(p4.find("default_action = drop();"), std::string::npos);
  // The hypervisor program has no per-p-rule headers at all (§4.2).
  EXPECT_EQ(p4.find("leaf_rule_0"), std::string::npos);
}

TEST(Programs, BracesBalance) {
  for (const auto& p4 :
       {network_switch_program(fabric(), P4Options{}),
        hypervisor_switch_program(fabric(), P4Options{})}) {
    std::ptrdiff_t depth = 0;
    for (const char c : p4) {
      if (c == '{') ++depth;
      if (c == '}') --depth;
      ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
  }
}

}  // namespace
}  // namespace elmo::p4gen
