#include "baselines/hostcast.h"

#include <gtest/gtest.h>

#include "elmo/evaluator.h"
#include "elmo/tree.h"
#include "testutil.h"
#include "util/rng.h"

namespace elmo::baselines {
namespace {

topo::ClosTopology small() {
  return topo::ClosTopology{topo::ClosParams::small_test()};
}

TEST(UnicastHops, Locality) {
  const auto t = small();
  EXPECT_EQ(unicast_hops(t, 0, 0), 0u);
  EXPECT_EQ(unicast_hops(t, 0, 1), 2u);   // same rack
  EXPECT_EQ(unicast_hops(t, 0, 4), 4u);   // same pod
  EXPECT_EQ(unicast_hops(t, 0, 17), 6u);  // cross pod
}

TEST(UnicastTraffic, OneCopyPerReceiver) {
  const auto t = small();
  const std::vector<topo::HostId> members{0, 1, 4, 17};
  const auto report = unicast_traffic(t, members, 0, 100);
  EXPECT_EQ(report.sender_copies, 3u);
  EXPECT_EQ(report.link_transmissions, 2u + 4u + 6u);
  EXPECT_EQ(report.wire_bytes, (2u + 4u + 6u) * 100);
}

TEST(UnicastTraffic, SenderExcluded) {
  const auto t = small();
  const std::vector<topo::HostId> members{5};
  const auto report = unicast_traffic(t, members, 5, 100);
  EXPECT_EQ(report.sender_copies, 0u);
  EXPECT_EQ(report.wire_bytes, 0u);
}

TEST(OverlayTraffic, RelaysFanOutWithinRacks) {
  const auto t = small();
  // Four members under one remote leaf (leaf 4: hosts 16..19).
  const std::vector<topo::HostId> members{16, 17, 18, 19};
  const auto report = overlay_traffic(t, members, 0, 100);
  // sender -> relay (6 hops: leaf 4 is in another pod) + 3 local
  // re-unicasts (2 hops each).
  EXPECT_EQ(report.sender_copies, 1u);
  EXPECT_EQ(report.link_transmissions, 6u + 3u * 2u);
}

TEST(OverlayTraffic, OwnRackServedDirectly) {
  const auto t = small();
  const std::vector<topo::HostId> members{1, 2};
  const auto report = overlay_traffic(t, members, 0, 100);
  EXPECT_EQ(report.sender_copies, 2u);
  EXPECT_EQ(report.link_transmissions, 4u);  // two 2-hop unicasts
}

TEST(OverlayTraffic, NeverWorseThanUnicastForClusteredGroups) {
  const auto t = small();
  util::Rng rng{1234};
  for (int trial = 0; trial < 50; ++trial) {
    const auto members = test::random_hosts(t, 3 + rng.index(30), rng);
    const auto sender = members[0];
    const auto uni = unicast_traffic(t, members, sender, 114);
    const auto over = overlay_traffic(t, members, sender, 114);
    EXPECT_LE(over.wire_bytes, uni.wire_bytes);
    EXPECT_LE(over.sender_copies, uni.sender_copies);
  }
}

TEST(Baselines, OrderingMatchesPaper) {
  // For realistic groups: ideal <= overlay <= unicast traffic.
  const auto t = small();
  util::Rng rng{555};
  for (int trial = 0; trial < 30; ++trial) {
    const auto members = test::random_hosts(t, 8 + rng.index(24), rng);
    const auto sender = members[0];
    const MulticastTree tree{t, members};
    const auto ideal_hops = TrafficEvaluator::ideal_transmissions(tree, sender);
    const auto over = overlay_traffic(t, members, sender, 114);
    const auto uni = unicast_traffic(t, members, sender, 114);
    EXPECT_LE(ideal_hops, over.link_transmissions);
    EXPECT_LE(over.link_transmissions, uni.link_transmissions);
  }
}

}  // namespace
}  // namespace elmo::baselines
