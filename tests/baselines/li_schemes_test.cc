#include <gtest/gtest.h>

#include "baselines/li_multicast.h"
#include "baselines/rmt.h"
#include "baselines/schemes.h"
#include "elmo/encoder.h"
#include "testutil.h"
#include "util/rng.h"

namespace elmo::baselines {
namespace {

topo::ClosTopology small() {
  return topo::ClosTopology{topo::ClosParams::small_test()};
}

TEST(LiMulticast, TreeHasOneSpinePerPodAndEntriesEverywhere) {
  const auto t = small();
  LiMulticast li{t};
  const std::vector<topo::HostId> members{0, 1, 17, 35};
  const elmo::MulticastTree tree{t, members};
  const auto li_tree = li.build_tree(tree, 12345);

  EXPECT_EQ(li_tree.leaves.size(), tree.num_leaves());
  EXPECT_EQ(li_tree.spines.size(), tree.num_pods());
  EXPECT_TRUE(li_tree.core.has_value());  // multi-pod
  EXPECT_EQ(li_tree.switch_count(),
            li_tree.leaves.size() + li_tree.spines.size() + 1);

  li.install(li_tree);
  EXPECT_DOUBLE_EQ(li.leaf_entries().sum(),
                   static_cast<double>(li_tree.leaves.size()));
  EXPECT_DOUBLE_EQ(li.spine_entries().sum(),
                   static_cast<double>(li_tree.spines.size()));
  EXPECT_DOUBLE_EQ(li.core_entries().sum(), 1.0);
  li.remove(li_tree);
  EXPECT_DOUBLE_EQ(li.leaf_entries().sum(), 0.0);
}

TEST(LiMulticast, SinglePodTreeNeedsNoCore) {
  const auto t = small();
  LiMulticast li{t};
  const elmo::MulticastTree tree{t, std::vector<topo::HostId>{0, 4}};
  const auto li_tree = li.build_tree(tree, 7);
  EXPECT_FALSE(li_tree.core.has_value());
}

TEST(LiMulticast, UpdatesForChangeCoverUnion) {
  const auto t = small();
  LiMulticast li{t};
  const elmo::MulticastTree before_tree{t, std::vector<topo::HostId>{0, 17}};
  const elmo::MulticastTree after_tree{t,
                                       std::vector<topo::HostId>{0, 17, 35}};
  const auto before = li.build_tree(before_tree, 3);
  const auto after = li.build_tree(after_tree, 3);
  const auto updates = LiMulticast::updates_for_change(before, after);
  EXPECT_EQ(updates.leaves.size(), 3u);  // union of 2 and 3 leaves
  EXPECT_GE(updates.spines.size(), 2u);
  EXPECT_EQ(updates.cores.size(), 1u);  // same hash, same core
}

TEST(LiMulticast, ElmoUsesFarFewerNetworkEntries) {
  // The Fig. 4/5 comparison in miniature: Li et al. installs entries in
  // every tree switch for every group; Elmo only spills s-rules.
  const auto t = small();
  util::Rng rng{777};
  LiMulticast li{t};
  elmo::EncoderConfig cfg;
  cfg.redundancy_limit = 6;
  const elmo::GroupEncoder encoder{t, cfg};
  elmo::SRuleSpace space{t, 100000};

  for (int g = 0; g < 200; ++g) {
    const auto members = test::random_hosts(t, 4 + rng.index(20), rng);
    const elmo::MulticastTree tree{t, members};
    li.install(li.build_tree(tree, rng()));
    (void)encoder.encode(tree, &space);
  }
  EXPECT_LT(space.leaf_stats().mean(), li.leaf_entries().mean());
}

TEST(Schemes, DerivedLimitsMatchPaperTable3) {
  const ComparisonBudget budget{};
  EXPECT_EQ(ip_multicast_max_groups(budget), 5000u);
  EXPECT_EQ(li_et_al_max_groups(budget), 150'000u);
  EXPECT_EQ(rule_aggregation_max_groups(budget), 500'000u);
  EXPECT_EQ(bier_max_hosts(budget), 2600u);   // "2.6K"
  EXPECT_EQ(sgm_max_group_size(budget), 81u); // "<100"
}

TEST(Schemes, TableHasSevenSchemesWithElmoLast) {
  const auto rows = comparison_table(ComparisonBudget{});
  ASSERT_EQ(rows.size(), 7u);
  EXPECT_EQ(rows.front().name, "IP Multicast");
  EXPECT_EQ(rows.back().name, "Elmo");
  // Elmo's headline properties.
  const auto& elmo_row = rows.back();
  EXPECT_TRUE(elmo_row.line_rate);
  EXPECT_TRUE(elmo_row.address_space_isolation);
  EXPECT_FALSE(elmo_row.unorthodox_switch);
  EXPECT_FALSE(elmo_row.end_host_replication);
  EXPECT_EQ(elmo_row.group_size_limit, "none");
  // Only the app-layer scheme replicates at end hosts.
  int replicators = 0;
  for (const auto& row : rows) {
    if (row.end_host_replication) ++replicators;
  }
  EXPECT_EQ(replicators, 1);
}

TEST(Rmt, TcamStrawmanWastes99Point5Percent) {
  // Appendix A: 10 p-rules x 11 bits -> 3 TCAM blocks, 10 of 2000 entries.
  const auto cost = tcam_prule_lookup_cost(10, 11);
  EXPECT_EQ(cost.blocks_needed, 3u);
  EXPECT_EQ(cost.entries_provided, 2000u);
  EXPECT_EQ(cost.entries_used, 10u);
  EXPECT_NEAR(cost.waste_fraction, 0.995, 1e-9);
}

TEST(Rmt, SramStrawmanNeedsOneStagePerRule) {
  const auto feasible = sram_prule_lookup_cost(10);
  EXPECT_EQ(feasible.stages_needed, 10u);
  EXPECT_TRUE(feasible.feasible);
  EXPECT_NEAR(feasible.waste_fraction, 0.999, 1e-9);

  // 30 leaf p-rules (the paper's header budget) cannot fit 16 stages.
  const auto infeasible = sram_prule_lookup_cost(30);
  EXPECT_FALSE(infeasible.feasible);
}

}  // namespace
}  // namespace elmo::baselines
