// Walk-equivalence for the telemetry layer: on a clean fuzz scenario the
// data-plane counters exported through accumulate_fabric_metrics must agree
// EXACTLY with the DeliveryOracle's per-host fan-out — same set-based
// expectation the differential harness diffs the fabric against, now applied
// to the metrics pipeline end to end (registry -> snapshot -> exposition).
#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <string>

#include "obs/metrics.h"
#include "sim/flight_recorder.h"
#include "topology/clos.h"
#include "verify/differ.h"
#include "verify/oracle.h"
#include "verify/scenario.h"

namespace elmo {
namespace {

// First seed whose scenario has no switch failures, no legacy leaves, and at
// least one send: failures legitimize duplicate deliveries and legacy policy
// needs the real encoding, either of which would turn the equality below
// into an inequality. Deterministic — generate_scenario is seed-pure.
verify::Scenario clean_scenario() {
  for (std::uint64_t seed = 1; seed < 256; ++seed) {
    auto sc = verify::generate_scenario(seed);
    bool clean = sc.legacy_leaves.empty();
    std::size_t sends = 0;
    for (const auto& ev : sc.events) {
      switch (ev.kind) {
        case verify::EventKind::kFailSpine:
        case verify::EventKind::kFailCore:
        case verify::EventKind::kRestoreSpine:
        case verify::EventKind::kRestoreCore:
          clean = false;
          break;
        case verify::EventKind::kSend:
          ++sends;
          break;
        default:
          break;
      }
    }
    if (clean && sends > 0) return sc;
  }
  ADD_FAILURE() << "no clean scenario in seeds 1..255";
  return verify::generate_scenario(1);
}

struct OracleTotals {
  std::uint64_t sends = 0;
  std::uint64_t host_copies = 0;    // one copy per expected host (no dups)
  std::uint64_t vm_deliveries = 0;  // sum of receiving VMs per expected host
};

// Mirror the scenario's membership script into the oracle and accumulate the
// ideal fan-out of every send. With no failures and no legacy leaves the
// encoding never influences expect(), so a default GroupEncoding suffices.
OracleTotals oracle_totals(const verify::Scenario& sc) {
  const topo::ClosTopology topology{sc.params};
  verify::DeliveryOracle oracle{topology, sc.legacy_leaves};
  for (const auto& g : sc.groups) oracle.create_group(g.members);

  OracleTotals totals;
  const GroupEncoding dummy;
  for (const auto& ev : sc.events) {
    switch (ev.kind) {
      case verify::EventKind::kJoin:
        oracle.join(ev.group_index, ev.member);
        break;
      case verify::EventKind::kLeave:
        oracle.leave(ev.group_index, ev.member.host, ev.member.vm);
        break;
      case verify::EventKind::kSend: {
        const auto ex = oracle.expect(ev.group_index, dummy, ev.sender);
        EXPECT_FALSE(ex.duplicates_allowed);
        ++totals.sends;
        totals.host_copies += ex.expected_hosts.size();
        for (const auto& [host, vms] : ex.expected_hosts) {
          totals.vm_deliveries += vms;
        }
        break;
      }
      default:
        ADD_FAILURE() << "failure event in a clean scenario";
        return totals;
    }
  }
  return totals;
}

TEST(WalkMetricsTest, CountersMatchDeliveryOracleFanout) {
  const auto sc = clean_scenario();
  const auto expected = oracle_totals(sc);
  ASSERT_GT(expected.sends, 0u);

  obs::MetricsRegistry registry{/*enabled=*/true};
  sim::FlightRecorder recorder;
  verify::RunObservability observability{&registry, &recorder};
  const auto report =
      verify::run_scenario(sc, verify::Mutation::kNone, &observability);
  ASSERT_TRUE(report.ok) << report.failure;
  ASSERT_EQ(report.sends_checked, expected.sends);

  const auto snap = registry.snapshot();
  // Fabric walk totals == oracle expectation, exactly.
  EXPECT_EQ(snap.value("elmo_fabric_sends_total"),
            static_cast<double>(expected.sends));
  EXPECT_EQ(snap.value("elmo_fabric_host_copies_total"),
            static_cast<double>(expected.host_copies));
  EXPECT_EQ(snap.value("elmo_fabric_vm_deliveries_total"),
            static_cast<double>(expected.vm_deliveries));
  EXPECT_EQ(snap.value("elmo_fabric_lost_copies_total"), 0.0);

  // Hypervisor counters tell the same story from the element side: one
  // encapsulation per send, one received copy per expected host, the full
  // per-VM fan-out, and no redundant copies on a failure-free walk.
  EXPECT_EQ(snap.value("elmo_dp_host_sent_total"),
            static_cast<double>(expected.sends));
  EXPECT_EQ(snap.value("elmo_dp_host_received_total"),
            static_cast<double>(expected.host_copies));
  EXPECT_EQ(snap.value("elmo_dp_host_vm_deliveries_total"),
            static_cast<double>(expected.vm_deliveries));
  EXPECT_EQ(snap.value("elmo_dp_host_redundant_copies_total"), 0.0);
  EXPECT_EQ(snap.value("elmo_dp_host_unicast_fallback_total"), 0.0);

  // Byte counters are per-copy packet sizes, so they must be consistent with
  // the packet counters: every received copy carries at least the payload.
  EXPECT_GE(snap.value("elmo_dp_host_bytes_received_total"),
            64.0 * static_cast<double>(expected.host_copies));
  EXPECT_EQ(snap.value("elmo_dp_host_delivered_bytes_total"),
            64.0 * static_cast<double>(expected.vm_deliveries));
}

TEST(WalkMetricsTest, FlightRecorderCapturesTheWalk) {
  const auto sc = clean_scenario();
  obs::MetricsRegistry registry{/*enabled=*/true};
  sim::FlightRecorder recorder;
  verify::RunObservability observability{&registry, &recorder};
  const auto report =
      verify::run_scenario(sc, verify::Mutation::kNone, &observability);
  ASSERT_TRUE(report.ok) << report.failure;

  EXPECT_GT(recorder.size(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
  const auto trace = recorder.chrome_trace_json();
  EXPECT_EQ(trace.rfind("{\"displayTimeUnit\"", 0), 0u);
  EXPECT_NE(trace.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_EQ(trace.back(), '\n');
  // Process/thread metadata for the layer lanes plus at least one duration
  // event per hypervisor delivery.
  EXPECT_NE(trace.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace.find("hosts"), std::string::npos);
}

TEST(WalkMetricsTest, RecorderCapBoundsMemory) {
  const auto sc = clean_scenario();
  obs::MetricsRegistry registry{/*enabled=*/false};
  sim::FlightRecorder recorder{/*max_events=*/4};
  verify::RunObservability observability{&registry, &recorder};
  const auto report =
      verify::run_scenario(sc, verify::Mutation::kNone, &observability);
  ASSERT_TRUE(report.ok) << report.failure;
  EXPECT_LE(recorder.size(), 4u);
  EXPECT_GT(recorder.dropped(), 0u);
}

}  // namespace
}  // namespace elmo
