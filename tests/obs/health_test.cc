// Health subsystem tests (DESIGN.md §14): TimeSeriesStore ring semantics,
// HealthMonitor incident folding (warm-up, dedup, flaps, close/reopen), the
// four built-in detectors over synthetic series, the JSON/text renderers,
// and a TSan-targeted concurrent scrape through a shared MetricsRegistry
// (the documented single-sampler ingest pattern).
#include "obs/health.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "elmo/controller.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "sim/fabric.h"
#include "topology/clos.h"

namespace elmo::obs {
namespace {

// --- TimeSeriesStore -------------------------------------------------------

TEST(HealthTimeSeries, RingWrapsAroundAtCapacity) {
  TimeSeriesStore store{4};
  for (int i = 0; i < 10; ++i) {
    store.append("s", static_cast<double>(i));
    store.advance();
  }
  EXPECT_EQ(store.window(), 10u);
  ASSERT_EQ(store.samples("s"), 4u);  // only the newest `capacity` survive
  for (std::size_t back = 0; back < 4; ++back) {
    const auto* sample = store.at("s", back);
    ASSERT_NE(sample, nullptr);
    EXPECT_EQ(sample->window, 9u - back);
    EXPECT_EQ(sample->value, static_cast<double>(9 - back));
  }
  EXPECT_EQ(store.at("s", 4), nullptr);  // fell off the ring
  EXPECT_EQ(store.delta("s", 3), 3.0);
  EXPECT_FALSE(store.delta("s", 4).has_value());
}

TEST(HealthTimeSeries, RingBoundaryAtExactlyCapacity) {
  // Exactly `capacity` windows: nothing has fallen off yet, and the oldest
  // sample is still addressable — the wrap must begin on window capacity+1,
  // not capacity.
  TimeSeriesStore store{4};
  for (int i = 0; i < 4; ++i) {
    store.append("s", static_cast<double>(i));
    store.advance();
  }
  EXPECT_EQ(store.window(), 4u);
  ASSERT_EQ(store.samples("s"), 4u);
  const auto* oldest = store.at("s", 3);
  ASSERT_NE(oldest, nullptr);
  EXPECT_EQ(oldest->window, 0u);
  EXPECT_EQ(oldest->value, 0.0);
  EXPECT_EQ(store.delta("s", 3), 3.0);  // full-span delta still computable

  // One more window evicts exactly the oldest sample.
  store.append("s", 4.0);
  store.advance();
  ASSERT_EQ(store.samples("s"), 4u);
  EXPECT_EQ(store.at("s", 3)->window, 1u);
  EXPECT_EQ(store.at("s", 4), nullptr);
}

TEST(HealthTimeSeries, SameWindowReappendOverwrites) {
  TimeSeriesStore store{8};
  store.append("s", 1.0);
  store.append("s", 2.0);  // re-scrape within one window is idempotent
  store.advance();
  ASSERT_EQ(store.samples("s"), 1u);
  EXPECT_EQ(store.last("s")->value, 2.0);
}

TEST(HealthTimeSeries, EwmaWarmupGate) {
  TimeSeriesStore store{8};
  for (int i = 0; i < 2; ++i) {
    store.append("lag", 0.2);
    store.advance();
  }
  EXPECT_FALSE(store.ewma_value("lag", 0.5, 3).has_value());
  store.append("lag", 0.2);
  store.advance();
  const auto smoothed = store.ewma_value("lag", 0.5, 3);
  ASSERT_TRUE(smoothed.has_value());
  EXPECT_DOUBLE_EQ(*smoothed, 0.2);  // constant series smooths to itself
}

TEST(HealthTimeSeries, IngestScrapesRegistrySnapshot) {
  MetricsRegistry reg;
  const auto c = reg.counter("reqs_total");
  const auto h = reg.histogram("lat_seconds", {0.1, 1.0});
  reg.add(c, 7);
  reg.observe(h, 0.05);
  reg.observe(h, 0.5);

  TimeSeriesStore store{8};
  store.ingest(reg.snapshot());
  EXPECT_EQ(store.last("reqs_total")->value, 7.0);
  // Histograms ingest as their observation count.
  EXPECT_EQ(store.last("lat_seconds")->value, 2.0);
}

// --- HealthMonitor incident folding ---------------------------------------

// Fires a fixed finding whenever the store's completed-window count is in
// `fire` — the knob the folding tests script against.
class ScriptedDetector final : public Detector {
 public:
  ScriptedDetector(std::set<std::uint64_t> fire, std::string element = "elt")
      : fire_{std::move(fire)}, element_{std::move(element)} {}
  const char* name() const override { return "scripted"; }
  void scan(const TimeSeriesStore& store, std::vector<Finding>& out) override {
    if (!fire_.contains(store.window())) return;
    Finding f;
    f.klass = "scripted";
    f.severity = Severity::kWarning;
    f.element = element_;
    f.summary = "scripted condition";
    f.evidence.push_back(Evidence{"series", 2, 1, "note"});
    out.push_back(std::move(f));
  }

 private:
  std::set<std::uint64_t> fire_;
  std::string element_;
};

// One advance + tick, i.e. one closed sampling window.
std::vector<std::size_t> step(TimeSeriesStore& store, HealthMonitor& mon) {
  store.advance();
  return mon.tick();
}

TEST(HealthMonitorFolding, WarmupSuppressesEarlyFindings) {
  TimeSeriesStore store{8};
  HealthMonitor mon{store, HealthMonitorOptions{.warmup_windows = 3}};
  mon.add_detector(std::make_unique<ScriptedDetector>(
      std::set<std::uint64_t>{1, 2, 3}));
  EXPECT_TRUE(step(store, mon).empty());  // window 1: warming up
  EXPECT_TRUE(step(store, mon).empty());  // window 2: warming up
  EXPECT_EQ(step(store, mon).size(), 1u);  // window 3: first real tick
  EXPECT_EQ(mon.incidents().size(), 1u);
  EXPECT_EQ(mon.incidents()[0].first_window, 3u);
}

TEST(HealthMonitorFolding, PersistentConditionIsOneIncident) {
  TimeSeriesStore store{8};
  HealthMonitor mon{store, HealthMonitorOptions{.warmup_windows = 0}};
  mon.add_detector(std::make_unique<ScriptedDetector>(
      std::set<std::uint64_t>{1, 2, 3, 4, 5}));
  std::size_t opened = 0;
  for (int i = 0; i < 5; ++i) opened += step(store, mon).size();
  EXPECT_EQ(opened, 1u);  // opened once, then merged
  ASSERT_EQ(mon.incidents().size(), 1u);
  const auto& inc = mon.incidents()[0];
  EXPECT_EQ(inc.windows_active, 5u);
  EXPECT_EQ(inc.first_window, 1u);
  EXPECT_EQ(inc.last_window, 5u);
  EXPECT_EQ(inc.flaps, 0u);
  EXPECT_TRUE(inc.open);
}

TEST(HealthMonitorFolding, FlapIsSuppressedIntoOneIncident) {
  TimeSeriesStore store{16};
  // close_after large enough that the gaps never close the incident.
  HealthMonitor mon{store, HealthMonitorOptions{.warmup_windows = 0,
                                                .close_after = 10}};
  mon.add_detector(std::make_unique<ScriptedDetector>(
      std::set<std::uint64_t>{1, 3, 5}));  // oscillating condition
  std::size_t opened = 0;
  for (int i = 0; i < 6; ++i) opened += step(store, mon).size();
  EXPECT_EQ(opened, 1u);  // never re-opened — it never closed
  ASSERT_EQ(mon.incidents().size(), 1u);
  const auto& inc = mon.incidents()[0];
  EXPECT_EQ(inc.flaps, 2u);  // two quiet gaps while open
  EXPECT_EQ(inc.windows_active, 3u);
}

TEST(HealthMonitorFolding, CloseAfterQuietThenReopenCountsAFlap) {
  TimeSeriesStore store{16};
  HealthMonitor mon{store, HealthMonitorOptions{.warmup_windows = 0,
                                                .close_after = 2}};
  mon.add_detector(std::make_unique<ScriptedDetector>(
      std::set<std::uint64_t>{1, 6}));
  EXPECT_EQ(step(store, mon).size(), 1u);   // window 1: opens
  EXPECT_TRUE(step(store, mon).empty());    // window 2: quiet
  EXPECT_TRUE(step(store, mon).empty());    // window 3: closes (1 + 2)
  EXPECT_FALSE(mon.incidents()[0].open);
  EXPECT_EQ(mon.open_count(), 0u);
  step(store, mon);                          // windows 4, 5: still quiet
  step(store, mon);
  EXPECT_EQ(step(store, mon).size(), 1u);   // window 6: reopens, not a copy
  ASSERT_EQ(mon.incidents().size(), 1u);
  EXPECT_TRUE(mon.incidents()[0].open);
  EXPECT_EQ(mon.incidents()[0].flaps, 1u);
  EXPECT_EQ(mon.open_count(), 1u);
}

TEST(HealthMonitorFolding, DistinctElementsAreDistinctIncidents) {
  TimeSeriesStore store{8};
  HealthMonitor mon{store, HealthMonitorOptions{.warmup_windows = 0}};
  mon.add_detector(std::make_unique<ScriptedDetector>(
      std::set<std::uint64_t>{1}, "elt-a"));
  mon.add_detector(std::make_unique<ScriptedDetector>(
      std::set<std::uint64_t>{1}, "elt-b"));
  EXPECT_EQ(step(store, mon).size(), 2u);
  EXPECT_EQ(mon.incidents().size(), 2u);
}

TEST(HealthMonitorFolding, SameTickDuplicateMergesSeverityOnly) {
  TimeSeriesStore store{8};
  HealthMonitor mon{store, HealthMonitorOptions{.warmup_windows = 0}};
  // Two detectors reporting the same (class, element) in one tick.
  mon.add_detector(std::make_unique<ScriptedDetector>(
      std::set<std::uint64_t>{1}));
  mon.add_detector(std::make_unique<ScriptedDetector>(
      std::set<std::uint64_t>{1}));
  EXPECT_EQ(step(store, mon).size(), 1u);
  ASSERT_EQ(mon.incidents().size(), 1u);
  EXPECT_EQ(mon.incidents()[0].windows_active, 1u);  // not double-counted
}

// --- built-in detectors over synthetic series ------------------------------

// Appends one window's worth of cumulative values and ticks.
struct SeriesDriver {
  TimeSeriesStore store{16};
  HealthMonitor mon;
  explicit SeriesDriver(std::unique_ptr<Detector> detector)
      : mon{store, HealthMonitorOptions{.warmup_windows = 0}} {
    mon.add_detector(std::move(detector));
  }
  std::vector<std::size_t> window(
      std::initializer_list<std::pair<const char*, double>> values) {
    for (const auto& [name, value] : values) store.append(name, value);
    store.advance();
    return mon.tick();
  }
};

TEST(HealthDetectors, LossRateLocalizesConservationDeficit) {
  SeriesDriver d{make_loss_rate_detector()};
  d.window({{"elmo_link_host_leaf_tx_total", 0},
            {"elmo_link_spine_leaf_tx_total", 0},
            {"elmo_dp_leaf_packets_in_total", 0}});
  // 100 copies put on the wire towards leaves, 90 processed: 10% gray loss.
  const auto opened = d.window({{"elmo_link_host_leaf_tx_total", 40},
                                {"elmo_link_spine_leaf_tx_total", 60},
                                {"elmo_dp_leaf_packets_in_total", 90}});
  ASSERT_EQ(opened.size(), 1u);
  const auto& inc = d.mon.incidents()[0];
  EXPECT_EQ(inc.klass, kLinkLossClass);
  EXPECT_EQ(inc.element, "layer-in:leaf");
  EXPECT_EQ(inc.severity, Severity::kCritical);  // 10% >= 5%
  ASSERT_FALSE(inc.evidence.empty());
  EXPECT_EQ(inc.evidence[0].series, "derived:loss_rate");
  EXPECT_NEAR(inc.evidence[0].observed, 0.10, 1e-9);
}

TEST(HealthDetectors, LossRateIgnoresThinTraffic) {
  SeriesDriver d{make_loss_rate_detector()};
  d.window({{"elmo_link_host_leaf_tx_total", 0},
            {"elmo_link_spine_leaf_tx_total", 0},
            {"elmo_dp_leaf_packets_in_total", 0}});
  // 40 transmissions is under min_transmissions=50: too thin to judge.
  EXPECT_TRUE(d.window({{"elmo_link_host_leaf_tx_total", 40},
                        {"elmo_link_spine_leaf_tx_total", 0},
                        {"elmo_dp_leaf_packets_in_total", 20}})
                  .empty());
}

TEST(HealthDetectors, StuckElementNeedsConsecutiveWindows) {
  SeriesDriver d{make_stuck_element_detector()};
  d.window({{"elmo_dp_spine_packets_in_total", 0},
            {"elmo_dp_spine_copies_out_total", 0}});
  // Ingress advances, egress flat — but only ONE such delta so far.
  EXPECT_TRUE(d.window({{"elmo_dp_spine_packets_in_total", 50},
                        {"elmo_dp_spine_copies_out_total", 0}})
                  .empty());
  const auto opened = d.window({{"elmo_dp_spine_packets_in_total", 100},
                                {"elmo_dp_spine_copies_out_total", 0}});
  ASSERT_EQ(opened.size(), 1u);
  const auto& inc = d.mon.incidents()[0];
  EXPECT_EQ(inc.klass, kStuckElementClass);
  EXPECT_EQ(inc.element, "layer:spine");
  EXPECT_EQ(inc.severity, Severity::kCritical);
}

TEST(HealthDetectors, FanoutAnomalyComparesAgainstExpectation) {
  SeriesDriver d{make_fanout_anomaly_detector()};
  d.window({{"elmo_expect_vm_deliveries_total", 0},
            {"elmo_dp_host_vm_deliveries_total", 0}});
  // Delivered exactly what the oracle expected: silent.
  EXPECT_TRUE(d.window({{"elmo_expect_vm_deliveries_total", 1000},
                        {"elmo_dp_host_vm_deliveries_total", 1000}})
                  .empty());
  // 10% short of the expectation: critical.
  const auto opened = d.window({{"elmo_expect_vm_deliveries_total", 2000},
                                {"elmo_dp_host_vm_deliveries_total", 1900}});
  ASSERT_EQ(opened.size(), 1u);
  EXPECT_EQ(d.mon.incidents()[0].klass, kFanoutAnomalyClass);
  EXPECT_EQ(d.mon.incidents()[0].element, "hosts");
  EXPECT_EQ(d.mon.incidents()[0].severity, Severity::kCritical);
}

TEST(HealthDetectors, ChurnLagWaitsOutEwmaWarmup) {
  SeriesDriver d{make_churn_lag_detector()};
  // Breaching from the first sample, but min_samples=3 gates the verdict.
  EXPECT_TRUE(
      d.window({{"elmo_stream_install_lag_p99_seconds", 0.2}}).empty());
  EXPECT_TRUE(
      d.window({{"elmo_stream_install_lag_p99_seconds", 0.2}}).empty());
  const auto opened =
      d.window({{"elmo_stream_install_lag_p99_seconds", 0.2}});
  ASSERT_EQ(opened.size(), 1u);
  const auto& inc = d.mon.incidents()[0];
  EXPECT_EQ(inc.klass, kChurnLagClass);
  EXPECT_EQ(inc.element, "stream:install-lag");
  EXPECT_EQ(inc.severity, Severity::kCritical);  // 0.2s > 2 x 50ms
}

TEST(HealthDetectors, CleanBalancedSeriesRaiseNothing) {
  TimeSeriesStore store{16};
  HealthMonitor mon{store, HealthMonitorOptions{.warmup_windows = 0}};
  add_default_detectors(mon);
  double total = 0;
  for (int w = 0; w < 6; ++w) {
    total += 500;  // every counter conserved, deliveries == expectation
    store.append("elmo_link_host_leaf_tx_total", total);
    store.append("elmo_link_spine_leaf_tx_total", total);
    store.append("elmo_dp_leaf_packets_in_total", 2 * total);
    store.append("elmo_dp_leaf_copies_out_total", 2 * total);
    store.append("elmo_dp_spine_packets_in_total", total);
    store.append("elmo_dp_spine_copies_out_total", total);
    store.append("elmo_link_leaf_spine_tx_total", total);
    store.append("elmo_link_leaf_host_tx_total", total);
    store.append("elmo_dp_host_received_total", total);
    store.append("elmo_expect_vm_deliveries_total", total);
    store.append("elmo_dp_host_vm_deliveries_total", total);
    store.append("elmo_stream_install_lag_p99_seconds", 0.010);
    store.advance();
    EXPECT_TRUE(mon.tick().empty()) << "false positive in window " << w;
  }
  EXPECT_TRUE(mon.incidents().empty());
}

// --- renderers -------------------------------------------------------------

TEST(HealthRender, JsonGolden) {
  TimeSeriesStore store{8};
  HealthMonitor mon{store, HealthMonitorOptions{.warmup_windows = 0}};
  mon.add_detector(std::make_unique<ScriptedDetector>(
      std::set<std::uint64_t>{1}));
  step(store, mon);
  mon.attach_explanation(0, "send #0 \"quoted\"");
  const std::string expected =
      "{\n"
      "  \"window\": 1,\n"
      "  \"open\": 1,\n"
      "  \"incidents\": [\n"
      "    {\"class\": \"scripted\", \"severity\": \"warning\", "
      "\"element\": \"elt\", \"summary\": \"scripted condition\",\n"
      "     \"first_window\": 1, \"last_window\": 1, \"windows_active\": 1, "
      "\"flaps\": 0, \"open\": true,\n"
      "     \"evidence\": [\n"
      "       {\"series\": \"series\", \"observed\": 2, \"threshold\": 1, "
      "\"note\": \"note\"}\n"
      "     ],\n"
      "     \"explanation\": \"send #0 \\\"quoted\\\"\"}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(mon.render_json(), expected);
}

TEST(HealthRender, EmptyJsonIsValid) {
  TimeSeriesStore store{8};
  HealthMonitor mon{store};
  EXPECT_EQ(mon.render_json(),
            "{\n  \"window\": 0,\n  \"open\": 0,\n  \"incidents\": []\n}\n");
}

TEST(HealthRender, TextTimelineShowsLifecycleAndExplanation) {
  TimeSeriesStore store{8};
  HealthMonitor mon{store, HealthMonitorOptions{.warmup_windows = 0}};
  mon.add_detector(std::make_unique<ScriptedDetector>(
      std::set<std::uint64_t>{1, 2}));
  step(store, mon);
  step(store, mon);
  mon.attach_explanation(0, "walk line 1\nwalk line 2");
  const auto text = mon.render_text();
  EXPECT_NE(text.find("[warning] scripted @ elt"), std::string::npos);
  EXPECT_NE(text.find("windows 1..2 (active 2, flaps 0) OPEN"),
            std::string::npos);
  EXPECT_NE(text.find("- series: observed 2, threshold 1 (note)"),
            std::string::npos);
  EXPECT_NE(text.find("       walk line 2"), std::string::npos);
}

// --- concurrency (run under TSan in CI) ------------------------------------

// The documented health sampling pattern: writers mutate a thread-safe
// MetricsRegistry while ONE sampler thread snapshots, ingests, and ticks.
// The store and monitor stay single-threaded; the registry snapshot is the
// synchronization point this locks in.
TEST(HealthTsan, ConcurrentRegistryScrapeAndTick) {
  MetricsRegistry reg;
  const auto sent = reg.counter("elmo_dp_host_sent_total");
  const auto lat = reg.histogram("elmo_walk_seconds", {1e-4, 1e-2});
  std::atomic<bool> stop{false};

  std::thread writer{[&] {
    for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      reg.add(sent);
      reg.observe(lat, 1e-3);
    }
  }};

  TimeSeriesStore store{32};
  HealthMonitor mon{store, HealthMonitorOptions{.warmup_windows = 0}};
  add_default_detectors(mon);
  for (int w = 0; w < 50; ++w) {
    store.ingest(reg.snapshot());
    (void)mon.tick();
  }
  stop.store(true);
  writer.join();

  EXPECT_EQ(store.window(), 50u);
  EXPECT_GE(store.samples("elmo_dp_host_sent_total"), 1u);
  // Monotonic counters and no fabric series: nothing to alert on.
  EXPECT_TRUE(mon.incidents().empty());
}

// Detectors sampling concurrently with a batched walk: the walk's worker
// threads publish spans into the global registry while the sampler thread
// snapshots, ingests, and ticks. The registry's per-thread shards are the
// only shared state — the walk's fabric is never read by the sampler.
TEST(HealthTsan, SamplerRunsConcurrentlyWithBatchedWalk) {
  topo::ClosTopology topology{topo::ClosParams::small_test()};
  Controller controller{topology, EncoderConfig{}};
  std::vector<Member> members;
  for (topo::HostId h = 0; h < 8; ++h) {
    members.push_back(Member{h, static_cast<std::uint32_t>(h),
                             MemberRole::kBoth});
  }
  const auto id = controller.create_group(0, members);
  sim::Fabric fabric{topology};
  fabric.install_group(controller, id);
  const auto address = controller.group(id).address;

  auto& reg = MetricsRegistry::global();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(true);

  std::atomic<bool> done{false};
  std::thread walker{[&] {
    const std::vector<sim::SendRequest> requests(
        32, sim::SendRequest{0, address, 64});
    const sim::BatchOptions options{2};
    for (int i = 0; i < 40; ++i) {
      (void)fabric.send_batch(std::span{requests}, options);
    }
    done.store(true, std::memory_order_release);
  }};

  TimeSeriesStore store{64};
  HealthMonitor mon{store, HealthMonitorOptions{.warmup_windows = 0}};
  add_default_detectors(mon);
  while (!done.load(std::memory_order_acquire)) {
    store.ingest(reg.snapshot());
    (void)mon.tick();
  }
  walker.join();
  store.ingest(reg.snapshot());  // final scrape sees every batch
  (void)mon.tick();
  reg.set_enabled(was_enabled);

  EXPECT_GE(store.samples("elmo_fabric_batch_seconds"), 1u);
  EXPECT_EQ(store.last("elmo_fabric_batch_seconds")->value, 40.0);
  // The global registry carries no elmo_link_*/elmo_dp_* series here, so a
  // clean concurrent run must stay incident-free.
  EXPECT_TRUE(mon.incidents().empty());
}

}  // namespace
}  // namespace elmo::obs
