// Tracer unit tests (DESIGN.md §15): causal structure (trace minting,
// parent links, flows), the bounded-buffer drop/orphan accounting the
// timeline linter reconciles against, the chrome://tracing export shape,
// and the obs::Span -> global tracer integration.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"

namespace elmo::obs {
namespace {

TEST(TraceSpans, MintsTracesAndLinksChildren) {
  Tracer tracer;
  const auto root = tracer.begin_span("root", TraceLane::kControl);
  EXPECT_NE(root.trace_id, 0u);
  EXPECT_NE(root.span_id, 0u);

  const auto child = tracer.begin_span("child", TraceLane::kControl, root);
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_NE(child.span_id, root.span_id);

  const auto other = tracer.begin_span("other", TraceLane::kWire);
  EXPECT_NE(other.trace_id, root.trace_id);  // null parent -> fresh trace

  tracer.end_span(child);
  tracer.end_span(root);
  tracer.end_span(other);

  const auto records = tracer.snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].parent_span, 0u);
  EXPECT_EQ(records[1].parent_span, root.span_id);
  EXPECT_GE(records[1].dur_us, 0);  // closed
  EXPECT_LE(records[1].ts_us + records[1].dur_us,
            records[0].ts_us + records[0].dur_us + 1e-3);

  const auto stats = tracer.stats();
  EXPECT_EQ(stats.spans, 3u);
  EXPECT_EQ(stats.open_spans, 0u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.orphans, 0u);
}

TEST(TraceSpans, AttrsAreCappedAtMax) {
  Tracer tracer;
  const auto ctx = tracer.begin_span(
      "attrs", TraceLane::kControl, {},
      {{"a", 1}, {"b", 2}, {"c", 3}, {"d", 4}, {"e", 5}, {"f", 6}});
  tracer.end_span(ctx);
  const auto records = tracer.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].nattrs, kMaxTraceAttrs);
  EXPECT_STREQ(records[0].attrs[0].key, "a");
  EXPECT_EQ(records[0].attrs[3].value, 4.0);
}

TEST(TraceDrops, FullBufferDropsAndOrphansChildren) {
  Tracer tracer{2};  // room for exactly two records
  const auto a = tracer.begin_span("a", TraceLane::kControl);
  const auto b = tracer.begin_span("b", TraceLane::kControl, a);
  const auto c = tracer.begin_span("c", TraceLane::kControl, a);  // dropped
  EXPECT_EQ(c.trace_id, a.trace_id);  // trace id still propagates
  EXPECT_EQ(c.span_id, 0u);           // the drop sentinel

  // A child recorded under the dropped span would be an orphan — but the
  // buffer is full, so it is dropped too and both counters advance.
  const auto d = tracer.begin_span("d", TraceLane::kControl, c);
  EXPECT_EQ(d.span_id, 0u);

  tracer.end_span(c);  // no-op: nothing was recorded
  tracer.end_span(b);
  tracer.end_span(a);

  const auto stats = tracer.stats();
  EXPECT_EQ(stats.spans, 2u);
  EXPECT_EQ(stats.dropped, 2u);
  EXPECT_EQ(stats.open_spans, 0u);
  EXPECT_EQ(tracer.snapshot().size(), 2u);
}

TEST(TraceDrops, ChildOfDroppedParentIsOrphanWhenRoomRemains) {
  Tracer tracer{1};
  const auto root = tracer.begin_span("root", TraceLane::kControl);
  const auto dropped = tracer.begin_span("gone", TraceLane::kControl, root);
  ASSERT_EQ(dropped.span_id, 0u);
  tracer.clear();  // room again; counters reset, next IDs keep advancing
  const auto orphan = tracer.begin_span("orphan", TraceLane::kControl, dropped);
  EXPECT_NE(orphan.span_id, 0u);
  EXPECT_EQ(orphan.trace_id, root.trace_id);
  tracer.end_span(orphan);
  const auto stats = tracer.stats();
  EXPECT_EQ(stats.orphans, 1u);
  EXPECT_EQ(stats.dropped, 0u);  // cleared with the buffer
  const auto records = tracer.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].orphan);
  EXPECT_EQ(records[0].parent_span, 0u);  // exported parentless
}

TEST(TraceFlows, RecordsCrossLaneEdges) {
  Tracer tracer;
  const auto from = tracer.begin_span("event", TraceLane::kControl);
  const auto to = tracer.instant("effect", TraceLane::kData, from);
  tracer.flow(from, TraceLane::kControl, to, TraceLane::kData);
  tracer.end_span(from);

  const auto records = tracer.snapshot();
  ASSERT_EQ(records.size(), 3u);
  const auto& flow = records[2];
  EXPECT_EQ(flow.kind, SpanRecord::Kind::kFlow);
  EXPECT_EQ(flow.link_span, from.span_id);
  EXPECT_EQ(flow.link_lane, TraceLane::kControl);
  EXPECT_EQ(flow.parent_span, to.span_id);
  EXPECT_EQ(flow.lane, TraceLane::kData);
  EXPECT_EQ(flow.trace_id, from.trace_id);

  const auto stats = tracer.stats();
  EXPECT_EQ(stats.flows, 1u);
  EXPECT_EQ(stats.instants, 1u);
}

TEST(TraceFlows, DroppedEndpointMarksOrphan) {
  Tracer tracer{1};
  const auto a = tracer.begin_span("a", TraceLane::kControl);
  const auto dropped = tracer.begin_span("b", TraceLane::kData, a);
  ASSERT_EQ(dropped.span_id, 0u);
  tracer.clear();
  tracer.flow(a, TraceLane::kControl, dropped, TraceLane::kData);
  const auto records = tracer.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].orphan);
  EXPECT_EQ(tracer.stats().orphans, 1u);
}

TEST(TraceExport, ChromeJsonCarriesLanesStatsAndFlowPairs) {
  Tracer tracer;
  const auto root = tracer.begin_span("churn:join", TraceLane::kControl, {},
                                      {{"group", 7}});
  const auto inst = tracer.instant("tte:first_delivery", TraceLane::kData,
                                   root);
  tracer.flow(root, TraceLane::kControl, inst, TraceLane::kData);
  tracer.end_span(root);
  const auto open = tracer.begin_span("open", TraceLane::kWire);
  (void)open;  // intentionally left open: export must still be well-formed

  const auto json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"elmo_trace\""), std::string::npos);
  EXPECT_NE(json.find("\"elmo_tracer_stats\""), std::string::npos);
  EXPECT_NE(json.find("\"churn:join\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\": \"e\""), std::string::npos);
  EXPECT_NE(json.find("\"open\": 1"), std::string::npos);
  // All five lanes get thread names.
  for (const char* lane : {"control", "wire", "install", "data", "phases"}) {
    EXPECT_NE(json.find(std::string{"\""} + lane + "\""), std::string::npos)
        << lane;
  }
}

TEST(TraceConcurrency, ParallelProducersStayAccounted) {
  // The controller's tree-encode phase spans record from pool workers while
  // the control plane traces on the main thread; TSan runs this test to
  // pin the mutex-guarded store (see tests/CMakeLists.txt).
  Tracer tracer;
  constexpr std::uint64_t kThreads = 4, kPer = 200;
  std::vector<std::thread> workers;
  for (std::uint64_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tracer] {
      for (std::uint64_t i = 0; i < kPer; ++i) {
        const auto root = tracer.begin_span("root", TraceLane::kControl);
        const auto effect = tracer.instant("effect", TraceLane::kData, root);
        tracer.flow(root, TraceLane::kControl, effect, TraceLane::kData);
        tracer.end_span(root);
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto stats = tracer.stats();
  EXPECT_EQ(stats.spans, kThreads * kPer);
  EXPECT_EQ(stats.instants, kThreads * kPer);
  EXPECT_EQ(stats.flows, kThreads * kPer);
  EXPECT_EQ(stats.open_spans, 0u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.orphans, 0u);
}

TEST(TraceSpanIntegration, GlobalTracerMirrorsPhaseSpans) {
  Tracer tracer;
  MetricsRegistry reg{false};  // metrics off: tracer alone must arm the span
  set_global_tracer(&tracer);
  {
    Span span{reg, 0, "phase:test"};
  }
  set_global_tracer(nullptr);
  {
    Span span{reg, 0, "phase:untraced"};  // no tracer, no registry: inert
  }
  const auto records = tracer.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_STREQ(records[0].name, "phase:test");
  EXPECT_EQ(records[0].lane, TraceLane::kPhase);
  EXPECT_GE(records[0].dur_us, 0);  // finished by the destructor
  EXPECT_EQ(tracer.stats().open_spans, 0u);
}

}  // namespace
}  // namespace elmo::obs
