// Tentpole coverage (DESIGN.md §10): the ProvenanceLog built by a fabric
// walk is a well-formed decision tree — every hop linked under its parent,
// every decision attributed to a rule class — and attachment is strictly
// opt-in.
#include "obs/provenance.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "elmo/controller.h"
#include "sim/fabric.h"

namespace elmo::obs {
namespace {

struct ProvenanceFixture : ::testing::Test {
  ProvenanceFixture()
      : topology{topo::ClosParams::small_test()},
        controller{topology, elmo::EncoderConfig{}},
        fabric{topology} {}

  elmo::GroupId make_group(const std::vector<topo::HostId>& hosts) {
    std::vector<elmo::Member> members;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      members.push_back(elmo::Member{hosts[i], static_cast<std::uint32_t>(i),
                                     elmo::MemberRole::kBoth});
    }
    const auto id = controller.create_group(0, members);
    fabric.install_group(controller, id);
    return id;
  }

  topo::ClosTopology topology;
  elmo::Controller controller;
  sim::Fabric fabric;
  ProvenanceLog log;
};

TEST_F(ProvenanceFixture, DecisionsOutsideAWalkAreIgnored) {
  HopDecision dec;
  dec.rule = RuleClass::kDrop;
  log.record_decision(dec);  // no trace open: must not crash or record
  EXPECT_TRUE(log.empty());

  log.begin_send(1, 0, 100);
  log.record_decision(dec);  // no hop open: the root keeps kSource
  EXPECT_EQ(log.last().hops[0].decision.rule, RuleClass::kSource);
}

TEST_F(ProvenanceFixture, WalkBuildsLinkedDecisionTree) {
  const auto id = make_group({0, 1, 17, 33});
  fabric.set_provenance(&log);
  const auto res =
      fabric.send(0, controller.group(id).address, std::size_t{64});

  ASSERT_EQ(log.sends().size(), 1u);
  const auto& trace = log.last();
  EXPECT_EQ(trace.src_host, 0u);
  ASSERT_FALSE(trace.hops.empty());

  // Root: the sending host, marked kSource, parentless.
  EXPECT_EQ(trace.hops[0].layer, topo::Layer::kHost);
  EXPECT_EQ(trace.hops[0].node, 0u);
  EXPECT_EQ(trace.hops[0].parent, kNoProvParent);
  EXPECT_EQ(trace.hops[0].decision.rule, RuleClass::kSource);

  std::size_t deliveries = 0;
  for (std::size_t i = 1; i < trace.hops.size(); ++i) {
    const auto& hop = trace.hops[i];
    // Parent linkage is consistent both ways.
    ASSERT_LT(hop.parent, i);
    const auto& siblings = trace.hops[hop.parent].children;
    EXPECT_NE(std::find(siblings.begin(), siblings.end(), i), siblings.end());
    // Every processed hop carries a decision.
    EXPECT_NE(hop.decision.rule, RuleClass::kNone);
    if (hop.layer == topo::Layer::kHost) {
      EXPECT_EQ(hop.decision.rule, RuleClass::kHostDeliver);
      EXPECT_GE(hop.decision.vm_deliveries, 1u);
      // Hosts strip the outer header + any surviving Elmo bytes.
      EXPECT_GE(hop.decision.popped_bytes, net::kOuterHeaderBytes);
      ++deliveries;
    } else {
      // A switch hop that replicated must expose its egress set.
      if (!hop.children.empty()) {
        EXPECT_TRUE(hop.decision.egress.any());
      }
    }
  }
  // One host hop per delivered copy.
  std::size_t copies = 0;
  for (const auto& [host, n] : res.host_copies) copies += n;
  EXPECT_EQ(deliveries, copies);

  // Cross-pod walk pops header sections somewhere along the way.
  std::size_t popped = 0;
  for (const auto& hop : trace.hops) popped += hop.decision.popped_bytes;
  EXPECT_GT(popped, 0u);
}

TEST_F(ProvenanceFixture, DetachedFabricRecordsNothing) {
  const auto id = make_group({0, 17});
  fabric.set_provenance(&log);
  (void)fabric.send(0, controller.group(id).address, std::size_t{64});
  ASSERT_EQ(log.sends().size(), 1u);

  fabric.set_provenance(nullptr);
  (void)fabric.send(0, controller.group(id).address, std::size_t{64});
  EXPECT_EQ(log.sends().size(), 1u);  // detached send left no trace
}

TEST_F(ProvenanceFixture, LossModelRecordsLostCopies) {
  const auto id = make_group({0, 1});
  fabric.set_provenance(&log);
  fabric.set_loss(1.0);
  (void)fabric.send(0, controller.group(id).address, std::size_t{64});

  ASSERT_EQ(log.sends().size(), 1u);
  const auto& trace = log.last();
  // Root + the first host->leaf copy, dropped in flight.
  ASSERT_EQ(trace.hops.size(), 2u);
  EXPECT_TRUE(trace.hops[1].lost);
  EXPECT_EQ(trace.hops[1].layer, topo::Layer::kLeaf);
  EXPECT_NE(render_trace(trace).find("[lost in flight]"), std::string::npos);
}

TEST_F(ProvenanceFixture, RenderNamesNodesAndRules) {
  const auto id = make_group({0, 17});
  fabric.set_provenance(&log);
  (void)fabric.send(0, controller.group(id).address, std::size_t{64});

  const auto text = render_trace(log.last());
  EXPECT_NE(text.find("host0"), std::string::npos);
  EXPECT_NE(text.find("L0"), std::string::npos);
  EXPECT_NE(text.find("host17"), std::string::npos);
  EXPECT_NE(text.find("[source"), std::string::npos);
  EXPECT_NE(text.find("deliver"), std::string::npos);
  EXPECT_NE(text.find("egress="), std::string::npos);
}

TEST_F(ProvenanceFixture, ClearDropsEveryTrace) {
  const auto id = make_group({0, 1});
  fabric.set_provenance(&log);
  (void)fabric.send(0, controller.group(id).address, std::size_t{64});
  (void)fabric.send(0, controller.group(id).address, std::size_t{64});
  EXPECT_EQ(log.sends().size(), 2u);
  log.clear();
  EXPECT_TRUE(log.empty());
}

}  // namespace
}  // namespace elmo::obs
