// MetricsRegistry unit tests: registration semantics, histogram bucket
// boundaries, disabled no-ops, collectors, reset, exposition goldens, and a
// multi-threaded aggregation check (run under TSan in CI — the per-thread
// shard design is exactly what this locks in).
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

namespace elmo::obs {
namespace {

TEST(MetricsTest, CounterAddAndSnapshot) {
  MetricsRegistry reg;
  const auto id = reg.counter("requests_total", "requests served");
  reg.add(id);
  reg.add(id, 41);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.value("requests_total"), 42.0);
  const auto* m = snap.find("requests_total");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kCounter);
  EXPECT_EQ(m->help, "requests served");
}

TEST(MetricsTest, RegistrationIsIdempotentByName) {
  MetricsRegistry reg;
  const auto a = reg.counter("shared_total");
  const auto b = reg.counter("shared_total", "later help is ignored");
  EXPECT_EQ(a, b);
  reg.add(a, 1);
  reg.add(b, 2);
  EXPECT_EQ(reg.snapshot().value("shared_total"), 3.0);
}

TEST(MetricsTest, KindMismatchThrows) {
  MetricsRegistry reg;
  (void)reg.counter("thing");
  EXPECT_THROW((void)reg.gauge("thing"), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("thing", {1.0}), std::invalid_argument);
  (void)reg.histogram("h", {1.0, 2.0});
  EXPECT_THROW((void)reg.histogram("h", {1.0, 3.0}), std::invalid_argument);
  EXPECT_EQ(reg.histogram("h", {1.0, 2.0}), reg.histogram("h", {1.0, 2.0}));
}

TEST(MetricsTest, NamesAreSanitized) {
  MetricsRegistry reg;
  // ':' is legal in Prometheus names and survives; space and '/' do not.
  const auto id = reg.counter("bad name:with/chars");
  reg.add(id);
  EXPECT_EQ(reg.snapshot().value("bad_name:with_chars"), 1.0);
}

TEST(MetricsTest, DisabledWritesAreDropped) {
  MetricsRegistry reg{/*enabled=*/false};
  const auto c = reg.counter("c_total");
  const auto h = reg.histogram("h", {1.0});
  const auto g = reg.gauge("g");
  reg.add(c, 7);
  reg.observe(h, 0.5);
  reg.gauge_set(g, 3.0);
  auto snap = reg.snapshot();
  EXPECT_EQ(snap.value("c_total"), 0.0);
  EXPECT_EQ(snap.find("h")->observations, 0u);
  EXPECT_EQ(snap.value("g"), 0.0);

  reg.set_enabled(true);
  reg.add(c, 7);
  EXPECT_EQ(reg.snapshot().value("c_total"), 7.0);
}

TEST(MetricsTest, HistogramBucketBoundaries) {
  MetricsRegistry reg;
  const auto id = reg.histogram("lat", {1.0, 10.0, 100.0});
  // Bucket i counts v <= bounds[i]; values above the last bound land in +Inf.
  for (const double v : {0.5, 1.0, 5.0, 10.0, 50.0, 1000.0}) {
    reg.observe(id, v);
  }
  const auto snap = reg.snapshot();
  const auto* m = snap.find("lat");
  ASSERT_NE(m, nullptr);
  ASSERT_EQ(m->bounds.size(), 3u);
  ASSERT_EQ(m->buckets.size(), 4u);  // 3 bounds + trailing +Inf
  EXPECT_EQ(m->buckets[0], 2u);      // 0.5, 1.0 (== bound is inclusive)
  EXPECT_EQ(m->buckets[1], 2u);      // 5.0, 10.0
  EXPECT_EQ(m->buckets[2], 1u);      // 50.0
  EXPECT_EQ(m->buckets[3], 1u);      // 1000.0
  EXPECT_EQ(m->observations, 6u);
  EXPECT_DOUBLE_EQ(m->sum, 0.5 + 1.0 + 5.0 + 10.0 + 50.0 + 1000.0);
}

TEST(MetricsTest, GaugeSetAndMax) {
  MetricsRegistry reg;
  const auto g = reg.gauge("depth");
  reg.gauge_set(g, 5.0);
  reg.gauge_set(g, 2.0);
  EXPECT_EQ(reg.snapshot().value("depth"), 2.0);  // last-write-wins
  const auto hw = reg.gauge("high_water");
  reg.gauge_max(hw, 3.0);
  reg.gauge_max(hw, 9.0);
  reg.gauge_max(hw, 4.0);
  EXPECT_EQ(reg.snapshot().value("high_water"), 9.0);  // monotone
}

TEST(MetricsTest, SnapshotIsSortedByName) {
  MetricsRegistry reg;
  reg.add(reg.counter("zzz_total"));
  reg.add(reg.counter("aaa_total"));
  reg.add(reg.counter("mmm_total"));
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "aaa_total");
  EXPECT_EQ(snap.metrics[1].name, "mmm_total");
  EXPECT_EQ(snap.metrics[2].name, "zzz_total");
}

TEST(MetricsTest, CollectorsRunAtScrapeAndMerge) {
  MetricsRegistry reg;
  reg.add(reg.counter("hits_total"), 10);
  int pulls = 0;
  reg.register_collector("mod", [&pulls](CollectorSink& sink) {
    ++pulls;
    sink.counter("hits_total", 5);  // merges into the registry counter
    sink.gauge("mod_gauge", 1.5);
  });
  auto snap = reg.snapshot();
  EXPECT_EQ(pulls, 1);
  EXPECT_EQ(snap.value("hits_total"), 15.0);
  EXPECT_EQ(snap.value("mod_gauge"), 1.5);

  reg.unregister_collector("mod");
  snap = reg.snapshot();
  EXPECT_EQ(pulls, 1);  // not invoked again
  EXPECT_EQ(snap.value("hits_total"), 10.0);
  EXPECT_EQ(snap.find("mod_gauge"), nullptr);
}

TEST(MetricsTest, ResetZeroesEverything) {
  MetricsRegistry reg;
  const auto c = reg.counter("c_total");
  const auto h = reg.histogram("h", {1.0});
  reg.add(c, 3);
  reg.observe(h, 0.5);
  reg.reset();
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.value("c_total"), 0.0);
  EXPECT_EQ(snap.find("h")->observations, 0u);
  reg.add(c, 2);  // cells still usable after reset
  EXPECT_EQ(reg.snapshot().value("c_total"), 2.0);
}

TEST(MetricsTest, PrometheusExpositionGolden) {
  MetricsRegistry reg;
  reg.add(reg.counter("walks_total", "fabric walks"), 2);
  reg.gauge_set(reg.gauge("depth"), 4.0);
  const auto h = reg.histogram("span_seconds", {1.0, 10.0}, "span latency");
  reg.observe(h, 0.5);
  reg.observe(h, 2.0);
  reg.observe(h, 99.0);

  auto snap = reg.snapshot();
  snap.uptime_seconds = 1.5;  // pin the only wall-clock-dependent line
  EXPECT_EQ(snap.prometheus(),
            "# HELP elmo_uptime_seconds Seconds since registry creation or "
            "reset\n"
            "# TYPE elmo_uptime_seconds gauge\n"
            "elmo_uptime_seconds 1.5\n"
            "# TYPE depth gauge\n"
            "depth 4\n"
            "# HELP span_seconds span latency\n"
            "# TYPE span_seconds histogram\n"
            "span_seconds_bucket{le=\"1\"} 1\n"
            "span_seconds_bucket{le=\"10\"} 2\n"
            "span_seconds_bucket{le=\"+Inf\"} 3\n"
            "span_seconds_sum 101.5\n"
            "span_seconds_count 3\n"
            "# HELP walks_total fabric walks\n"
            "# TYPE walks_total counter\n"
            "walks_total 2\n");
}

TEST(MetricsTest, JsonDumpContainsCumulativeBuckets) {
  MetricsRegistry reg;
  const auto h = reg.histogram("h", {1.0, 10.0});
  reg.observe(h, 0.5);
  reg.observe(h, 5.0);
  auto snap = reg.snapshot();
  snap.uptime_seconds = 2.0;
  const auto json = snap.json();
  EXPECT_NE(json.find("\"uptime_seconds\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"h\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
}

TEST(MetricsTest, WriteMetricsRoundTrips) {
  MetricsRegistry reg;
  reg.add(reg.counter("w_total"), 9);
  const auto snap = reg.snapshot();
  const std::string prom = testing::TempDir() + "/metrics_test.prom";
  const std::string json = testing::TempDir() + "/metrics_test.json";
  ASSERT_TRUE(write_metrics(prom, snap));
  ASSERT_TRUE(write_metrics(json, snap));
  std::stringstream got;
  got << std::ifstream{prom}.rdbuf();
  EXPECT_NE(got.str().find("w_total 9"), std::string::npos);
  got.str({});
  got << std::ifstream{json}.rdbuf();
  EXPECT_NE(got.str().find("\"w_total\""), std::string::npos);
  std::remove(prom.c_str());
  std::remove(json.c_str());
}

TEST(MetricsTest, LatencyBoundsAreStrictlyIncreasing) {
  const auto bounds = latency_bounds();
  ASSERT_GE(bounds.size(), 2u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

// The TSan target in CI runs this: concurrent adds/observes from many
// threads, including first-touch registration of thread-local cells, must be
// race-free and aggregate exactly.
TEST(MetricsTest, ConcurrentWritesAggregateExactly) {
  MetricsRegistry reg;
  const auto c = reg.counter("concurrent_total");
  const auto h = reg.histogram("concurrent_hist", {0.5});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, c, h] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.add(c);
        reg.observe(h, i % 2 == 0 ? 0.25 : 1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.value("concurrent_total"),
            static_cast<double>(kThreads * kPerThread));
  const auto* m = snap.find("concurrent_hist");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->observations,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(m->buckets[0],
            static_cast<std::uint64_t>(kThreads * kPerThread / 2));
}

// Scrapes racing writers must also be clean (a weaker guarantee — totals are
// only exact once writers stop — but TSan validates the synchronization).
TEST(MetricsTest, ConcurrentSnapshotWhileWriting) {
  MetricsRegistry reg;
  const auto c = reg.counter("racing_total");
  constexpr int kWrites = 200'000;
  std::thread writer{[&] {
    for (int i = 0; i < kWrites; ++i) reg.add(c);
  }};
  for (int i = 0; i < 50; ++i) (void)reg.snapshot();
  writer.join();
  EXPECT_EQ(reg.snapshot().value("racing_total"),
            static_cast<double>(kWrites));
}

}  // namespace
}  // namespace elmo::obs
