// Cross-validation of the two execution engines: the packet-level data plane
// (dataplane/ + sim/Fabric) and the analytic TrafficEvaluator used by the
// large-scale benches must agree byte-for-byte on wire traffic and on the
// set of hosts reached — for any group, any sender, any encoding regime
// (pure p-rules, s-rules, defaults).
#include <gtest/gtest.h>

#include "dataplane/common.h"
#include "elmo/evaluator.h"
#include "sim/fabric.h"
#include "testutil.h"

namespace elmo {
namespace {

struct CrosscheckParam {
  std::size_t hmax_leaf;  // 0 = derive from budget
  std::size_t redundancy;
  std::size_t srule_capacity;
  std::uint64_t seed;
};

class Crosscheck : public ::testing::TestWithParam<CrosscheckParam> {};

TEST_P(Crosscheck, FabricAndEvaluatorAgree) {
  const auto param = GetParam();
  const topo::ClosTopology topology{topo::ClosParams::small_test()};
  EncoderConfig cfg;
  cfg.hmax_leaf_override = param.hmax_leaf;
  cfg.redundancy_limit = param.redundancy;
  cfg.srule_capacity = param.srule_capacity;

  Controller controller{topology, cfg};
  sim::Fabric fabric{topology};
  const TrafficEvaluator evaluator{topology};
  util::Rng rng{param.seed};

  for (int trial = 0; trial < 25; ++trial) {
    const auto hosts =
        test::random_hosts(topology, 2 + rng.index(30), rng);
    std::vector<Member> members;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      members.push_back(Member{hosts[i], static_cast<std::uint32_t>(i),
                               MemberRole::kBoth});
    }
    const auto id = controller.create_group(0, members);
    fabric.install_group(controller, id);
    const auto& g = controller.group(id);

    const std::size_t payload = 64 + rng.index(1400);
    for (int s = 0; s < 3; ++s) {
      const auto sender = hosts[rng.index(hosts.size())];
      fabric.reset_link_stats();
      const auto fabric_result = fabric.send(sender, g.address, payload);

      const auto flow = dp::flow_hash(dp::host_address(sender), g.address);
      const auto report =
          evaluator.evaluate(*g.tree, g.encoding, sender, payload, flow);

      EXPECT_EQ(fabric_result.total_wire_bytes, report.elmo_wire_bytes)
          << "trial " << trial << " sender " << sender;
      EXPECT_EQ(fabric_result.total_link_transmissions,
                report.elmo_link_transmissions);

      // Delivery agreement: member copies and spurious copies.
      std::size_t member_copies = 0;
      std::size_t spurious_copies = 0;
      for (const auto& [host, copies] : fabric_result.host_copies) {
        if (host != sender && g.tree->is_member(host)) {
          member_copies += copies;
        } else {
          spurious_copies += copies;
        }
      }
      EXPECT_EQ(member_copies, report.delivery.members_reached +
                                   report.delivery.duplicate_deliveries);
      EXPECT_EQ(spurious_copies, report.delivery.spurious_deliveries);
      EXPECT_TRUE(report.delivery.exactly_once());
    }
    fabric.uninstall_group(controller, id);
    controller.remove_group(id);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, Crosscheck,
    ::testing::Values(
        // Generous budget: everything in p-rules.
        CrosscheckParam{0, 0, 1000, 1},
        // Redundant sharing.
        CrosscheckParam{0, 6, 1000, 2},
        CrosscheckParam{0, 12, 1000, 3},
        // Tight header: heavy s-rule usage.
        CrosscheckParam{1, 0, 1000, 4},
        // Tight header and no s-rules: default-rule cascades.
        CrosscheckParam{1, 0, 0, 5},
        CrosscheckParam{2, 4, 2, 6}));

TEST(Crosscheck, RunningExampleBothEnginesAndAllSenders) {
  const topo::ClosTopology topology{topo::ClosParams::running_example()};
  Controller controller{topology, EncoderConfig{}};
  sim::Fabric fabric{topology};
  const TrafficEvaluator evaluator{topology};

  const std::vector<topo::HostId> hosts{0, 1, 10, 12, 13, 15};
  std::vector<Member> members;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    members.push_back(
        Member{hosts[i], static_cast<std::uint32_t>(i), MemberRole::kBoth});
  }
  const auto id = controller.create_group(0, members);
  fabric.install_group(controller, id);
  const auto& g = controller.group(id);

  for (const auto sender : hosts) {
    const auto fabric_result = fabric.send(sender, g.address, 100);
    const auto flow = dp::flow_hash(dp::host_address(sender), g.address);
    const auto report =
        evaluator.evaluate(*g.tree, g.encoding, sender, 100, flow);
    std::size_t copies = 0;
    for (const auto& [host, count] : fabric_result.host_copies) {
      copies += count;
    }
    EXPECT_EQ(copies, report.delivery.members_reached +
                          report.delivery.duplicate_deliveries +
                          report.delivery.spurious_deliveries);
    EXPECT_TRUE(report.delivery.exactly_once());
  }
}

}  // namespace
}  // namespace elmo
