#include "sim/mtrace.h"

#include <gtest/gtest.h>

namespace elmo::sim {
namespace {

struct MtraceFixture : ::testing::Test {
  MtraceFixture()
      : topology{topo::ClosParams::small_test()},
        controller{topology, elmo::EncoderConfig{}},
        fabric{topology} {}

  elmo::GroupId make_group(const std::vector<topo::HostId>& hosts) {
    std::vector<elmo::Member> members;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      members.push_back(elmo::Member{hosts[i], static_cast<std::uint32_t>(i),
                                     elmo::MemberRole::kBoth});
    }
    const auto id = controller.create_group(0, members);
    fabric.install_group(controller, id);
    return id;
  }

  topo::ClosTopology topology;
  elmo::Controller controller;
  Fabric fabric;
};

TEST_F(MtraceFixture, SingleRackTrace) {
  const auto id = make_group({0, 1});
  const auto report = mtrace(fabric, controller, id, 0, 64);
  EXPECT_EQ(report.members_reached, 1u);
  EXPECT_EQ(report.redundant_copies, 0u);
  // host0 -> L0 -> host1: two hops.
  ASSERT_EQ(report.hops.size(), 2u);
  EXPECT_EQ(report.hops[0].from, (NodeRef{topo::Layer::kHost, 0}));
  EXPECT_EQ(report.hops[0].to, (NodeRef{topo::Layer::kLeaf, 0}));
  EXPECT_EQ(report.hops[1].to, (NodeRef{topo::Layer::kHost, 1}));
}

TEST_F(MtraceFixture, CrossPodTraceShowsPopping) {
  const auto id = make_group({0, 17, 33});
  const auto report = mtrace(fabric, controller, id, 0, 100);
  EXPECT_EQ(report.members_reached, 2u);
  EXPECT_GE(report.max_depth, 5u);  // host-leaf-spine-core-spine-leaf-host

  // Header bytes shrink monotonically with depth (p-rule popping): compare
  // the first hop against final host deliveries.
  std::uint64_t first_hop_bytes = 0;
  std::uint64_t min_delivery_bytes = ~0ull;
  for (const auto& hop : report.hops) {
    if (hop.depth == 1) first_hop_bytes = hop.bytes;
    if (hop.to.layer == topo::Layer::kHost) {
      min_delivery_bytes = std::min(min_delivery_bytes, hop.bytes);
    }
  }
  EXPECT_GT(first_hop_bytes, min_delivery_bytes);
  EXPECT_EQ(min_delivery_bytes, net::kOuterHeaderBytes + 100);
}

TEST_F(MtraceFixture, RenderMentionsEveryLayer) {
  const auto id = make_group({0, 17});
  const auto report = mtrace(fabric, controller, id, 0, 64);
  const auto text = report.render();
  EXPECT_NE(text.find("host0"), std::string::npos);
  EXPECT_NE(text.find("L0"), std::string::npos);
  EXPECT_NE(text.find("S"), std::string::npos);
  EXPECT_NE(text.find("C"), std::string::npos);
  EXPECT_NE(text.find("host17"), std::string::npos);
  EXPECT_NE(text.find("members reached"), std::string::npos);
}

TEST_F(MtraceFixture, CounterDeltasCoverTheProbe) {
  const auto id = make_group({0, 1, 17});
  // Pre-probe traffic must not leak into the delta.
  (void)fabric.send(0, controller.group(id).address, std::size_t{64});
  const auto report = mtrace(fabric, controller, id, 0, 64);

  // One probe: the sender's leaf sees it once, every delivery fans out of a
  // hypervisor, and nothing is dropped on a healthy fabric.
  const auto& c = report.counters;
  EXPECT_GE(c.leaves.packets_in, 1u);
  EXPECT_GE(c.leaves.copies_out, 2u);  // host1 (same rack) + spine path
  EXPECT_GT(c.leaves.bytes_in, 0u);
  EXPECT_GT(c.leaves.bytes_out, 0u);
  EXPECT_EQ(c.leaves.drops, 0u);
  EXPECT_EQ(c.hypervisors.received, report.members_reached);
  EXPECT_EQ(c.hypervisors.delivered_to_vms, report.members_reached);
  // Cross-pod probe traverses spines, so the pop accounting must move.
  EXPECT_GT(c.leaves.header_pops + c.spines.header_pops, 0u);

  const auto text = report.render();
  EXPECT_NE(text.find("counters (probe delta):"), std::string::npos);
}

TEST_F(MtraceFixture, CounterDeltaGoldenRender) {
  // Deterministic single-rack probe: host0 -> L0 -> host1. The sender's leaf
  // matches its upstream rule (the up-facing table owns packets entering from
  // the rack) and pops both the upstream and leaf header sections before the
  // hypervisor strips the rest. Golden-pins the counter-delta section of the
  // render so accounting regressions show up as a literal diff.
  const auto id = make_group({0, 1});
  const auto report = mtrace(fabric, controller, id, 0, 64);
  const auto text = report.render();
  const auto counters = text.substr(text.find("counters (probe delta):"));
  EXPECT_EQ(counters,
            "counters (probe delta):\n"
            "  leaf : 1 in, 1 out, 0 p-rule, 1 upstream, 0 s-rule, "
            "0 default, 0 drops, 2 pops (" +
                std::to_string(report.counters.leaves.header_pop_bytes) +
                "B)\n"
                "  host : 1 received, 1 VM deliveries, 0 discarded\n");
}

TEST_F(MtraceFixture, RedundantCopiesAttributed) {
  // Force default-rule spurious deliveries with a tiny header budget.
  elmo::EncoderConfig cfg;
  cfg.hmax_leaf_override = 1;
  cfg.hmax_spine = 1;
  cfg.srule_capacity = 0;
  elmo::Controller tight{topology, cfg};
  Fabric tight_fabric{topology};
  std::vector<elmo::Member> members;
  for (std::uint32_t i = 0; i < 12; ++i) {
    members.push_back(elmo::Member{i * 5 % 64, i, elmo::MemberRole::kBoth});
  }
  const auto id = tight.create_group(0, members);
  tight_fabric.install_group(tight, id);
  const auto report = mtrace(tight_fabric, tight, id, members[0].host, 64);
  EXPECT_GT(report.redundant_copies, 0u);
  EXPECT_EQ(report.members_reached, members.size() - 1);
}

}  // namespace
}  // namespace elmo::sim
