// Equivalence of the event-queue fabric walk against a reference recursive
// walk (the pre-pipeline algorithm, rebuilt here from the materializing
// compat wrappers). Every SendResult field must match bit-exactly across
// encoder regimes, topologies, and senders.
#include <gtest/gtest.h>

#include "dataplane/common.h"
#include "sim/fabric.h"
#include "testutil.h"

namespace elmo {
namespace {

// Depth-first walk that materializes a full Packet per link, exactly like
// the original recursive implementation.
class ReferenceWalk {
 public:
  ReferenceWalk(sim::Fabric& fabric) : fabric_{fabric} {}

  sim::SendResult send(topo::HostId src, net::Ipv4Address group,
                       std::span<const std::uint8_t> payload) {
    sim::SendResult result;
    auto packet = fabric_.hypervisor(src).encapsulate(group, payload);
    if (!packet) return result;
    account(packet->size(), result);
    deliver(topo::Layer::kLeaf, fabric_.topology().leaf_of_host(src),
            *packet, 1, result);
    return result;
  }

 private:
  void account(std::size_t bytes, sim::SendResult& result) {
    ++result.total_link_transmissions;
    result.total_wire_bytes += bytes;
  }

  dp::NetworkSwitch& switch_at(topo::Layer layer, std::uint32_t id) {
    switch (layer) {
      case topo::Layer::kLeaf:
        return fabric_.leaf(id);
      case topo::Layer::kSpine:
        return fabric_.spine(id);
      default:
        return fabric_.core(id);
    }
  }

  // Mirrors the fabric's port wiring (Fabric::neighbor_of is private).
  std::pair<topo::Layer, std::uint32_t> neighbor(topo::Layer layer,
                                                 std::uint32_t id,
                                                 std::size_t port) const {
    const auto& t = fabric_.topology();
    switch (layer) {
      case topo::Layer::kLeaf:
        if (port < t.leaf_down_ports()) {
          return {topo::Layer::kHost, t.host_at(id, port)};
        }
        return {topo::Layer::kSpine,
                t.spine_at(t.pod_of_leaf(id), port - t.leaf_down_ports())};
      case topo::Layer::kSpine:
        if (port < t.spine_down_ports()) {
          return {topo::Layer::kLeaf, t.leaf_at(t.pod_of_spine(id), port)};
        }
        return {topo::Layer::kCore,
                t.core_behind_spine_port(id, port - t.spine_down_ports())};
      default:
        return {topo::Layer::kSpine,
                t.spine_behind_core_port(id, static_cast<topo::PodId>(port))};
    }
  }

  void deliver(topo::Layer layer, std::uint32_t id, const net::Packet& packet,
               std::size_t hops, sim::SendResult& result) {
    result.max_hops = std::max(result.max_hops, hops);
    auto copies = switch_at(layer, id).process(packet);
    for (auto& copy : copies) {
      const auto [next_layer, next_id] = neighbor(layer, id, copy.out_port);
      account(copy.packet.size(), result);
      if (next_layer == topo::Layer::kHost) {
        ++result.host_copies[next_id];
        result.vm_deliveries +=
            fabric_.hypervisor(next_id).receive(copy.packet).size();
      } else {
        deliver(next_layer, next_id, copy.packet, hops + 1, result);
      }
    }
  }

  sim::Fabric& fabric_;
};

void expect_same_result(const sim::SendResult& queue_walk,
                        const sim::SendResult& reference) {
  EXPECT_EQ(queue_walk.host_copies, reference.host_copies);
  EXPECT_EQ(queue_walk.vm_deliveries, reference.vm_deliveries);
  EXPECT_EQ(queue_walk.total_wire_bytes, reference.total_wire_bytes);
  EXPECT_EQ(queue_walk.total_link_transmissions,
            reference.total_link_transmissions);
  EXPECT_EQ(queue_walk.max_hops, reference.max_hops);
}

struct RegimeParam {
  std::size_t hmax_leaf;  // 0 = derive from budget
  std::size_t redundancy;
  std::size_t srule_capacity;
  std::uint64_t seed;
};

class WalkEquivalence : public ::testing::TestWithParam<RegimeParam> {};

TEST_P(WalkEquivalence, QueueWalkMatchesRecursiveWalk) {
  const auto param = GetParam();
  const topo::ClosTopology topology{topo::ClosParams::small_test()};
  EncoderConfig cfg;
  cfg.hmax_leaf_override = param.hmax_leaf;
  cfg.redundancy_limit = param.redundancy;
  cfg.srule_capacity = param.srule_capacity;

  Controller controller{topology, cfg};
  sim::Fabric fabric{topology};
  ReferenceWalk reference{fabric};
  util::Rng rng{param.seed};

  for (int trial = 0; trial < 10; ++trial) {
    const auto hosts = test::random_hosts(topology, 2 + rng.index(30), rng);
    std::vector<Member> members;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      members.push_back(Member{hosts[i], static_cast<std::uint32_t>(i),
                               MemberRole::kBoth});
    }
    const auto id = controller.create_group(0, members);
    fabric.install_group(controller, id);
    const auto& g = controller.group(id);

    const std::vector<std::uint8_t> payload(64 + rng.index(1400), 0xab);
    for (int s = 0; s < 3; ++s) {
      const auto sender = hosts[rng.index(hosts.size())];
      const auto expected = reference.send(sender, g.address, payload);
      const auto actual = fabric.send(sender, g.address, payload);
      expect_same_result(actual, expected);
    }
    fabric.uninstall_group(controller, id);
    controller.remove_group(id);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, WalkEquivalence,
    ::testing::Values(RegimeParam{0, 0, 1000, 11},   // all p-rules
                      RegimeParam{0, 6, 1000, 12},   // redundant sharing
                      RegimeParam{1, 0, 1000, 13},   // heavy s-rules
                      RegimeParam{1, 0, 0, 14},      // default-rule cascades
                      RegimeParam{2, 4, 2, 15}));

TEST(WalkEquivalence, RunningExampleAllSenders) {
  const topo::ClosTopology topology{topo::ClosParams::running_example()};
  Controller controller{topology, EncoderConfig{}};
  sim::Fabric fabric{topology};
  ReferenceWalk reference{fabric};

  const std::vector<topo::HostId> hosts{0, 1, 10, 12, 13, 15};
  std::vector<Member> members;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    members.push_back(
        Member{hosts[i], static_cast<std::uint32_t>(i), MemberRole::kBoth});
  }
  const auto id = controller.create_group(0, members);
  fabric.install_group(controller, id);
  const auto& g = controller.group(id);

  const std::vector<std::uint8_t> payload(100, 0x5c);
  for (const auto sender : hosts) {
    expect_same_result(fabric.send(sender, g.address, payload),
                       reference.send(sender, g.address, payload));
  }
}

TEST(WalkEquivalence, LegacyLeavesAgreeToo) {
  // A mixed fabric exercises the legacy no-pop path and the hypervisor's
  // unstripped-header skip in both walks.
  const topo::ClosTopology topology{topo::ClosParams::small_test()};
  Controller controller{topology, EncoderConfig{}};
  std::vector<bool> legacy(topology.num_leaves(), false);
  legacy[1] = true;  // hosts 4..7
  legacy[8] = true;  // hosts 32..35
  controller.set_legacy_leaves(legacy);

  sim::Fabric fabric{topology};
  fabric.leaf(1).set_legacy(true);
  fabric.leaf(8).set_legacy(true);
  ReferenceWalk reference{fabric};

  const std::vector<topo::HostId> hosts{0, 5, 6, 17, 33};
  std::vector<Member> members;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    members.push_back(
        Member{hosts[i], static_cast<std::uint32_t>(i), MemberRole::kBoth});
  }
  const auto id = controller.create_group(0, members);
  fabric.install_group(controller, id);
  const auto& g = controller.group(id);

  const std::vector<std::uint8_t> payload(256, 0xab);
  for (const auto sender : hosts) {
    expect_same_result(fabric.send(sender, g.address, payload),
                       reference.send(sender, g.address, payload));
  }
}

}  // namespace
}  // namespace elmo
