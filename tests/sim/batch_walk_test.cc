// Equivalence of the batched, sharded fabric walk (Fabric::send_batch,
// DESIGN.md §12) against the serial send() reference: at any thread count
// the batched walk must reproduce serial results bit-exactly — per-send
// delivery maps, link counters, element stats, walk totals, loss draws, and
// provenance traces. The suite name keeps the WalkEquivalence substring so
// the CI tsan job picks these tests up.
#include <gtest/gtest.h>

#include <vector>

#include "elmo/controller.h"
#include "obs/provenance.h"
#include "sim/fabric.h"
#include "testutil.h"
#include "verify/differ.h"
#include "verify/scenario.h"

namespace elmo {
namespace {

void expect_same_result(const sim::SendResult& batched,
                        const sim::SendResult& serial) {
  EXPECT_EQ(batched.host_copies, serial.host_copies);
  EXPECT_EQ(batched.vm_deliveries, serial.vm_deliveries);
  EXPECT_EQ(batched.total_wire_bytes, serial.total_wire_bytes);
  EXPECT_EQ(batched.total_link_transmissions,
            serial.total_link_transmissions);
  EXPECT_EQ(batched.max_hops, serial.max_hops);
}

// Everything except max_queue_depth, which is documented mode-specific
// (FIFO high-water mark vs widest wave).
void expect_same_walk_stats(const sim::FabricWalkStats& batched,
                            const sim::FabricWalkStats& serial) {
  EXPECT_EQ(batched.sends, serial.sends);
  EXPECT_EQ(batched.work_items, serial.work_items);
  EXPECT_EQ(batched.enqueues, serial.enqueues);
  EXPECT_EQ(batched.vm_deliveries, serial.vm_deliveries);
  EXPECT_EQ(batched.host_copies, serial.host_copies);
  EXPECT_EQ(batched.link_transmissions, serial.link_transmissions);
  EXPECT_EQ(batched.wire_bytes, serial.wire_bytes);
  EXPECT_EQ(batched.lost_copies, serial.lost_copies);
}

void expect_same_switch_stats(const dp::SwitchStats& a,
                              const dp::SwitchStats& b) {
  EXPECT_EQ(a.packets_in, b.packets_in);
  EXPECT_EQ(a.bytes_in, b.bytes_in);
  EXPECT_EQ(a.copies_out, b.copies_out);
  EXPECT_EQ(a.bytes_out, b.bytes_out);
  EXPECT_EQ(a.prule_matches, b.prule_matches);
  EXPECT_EQ(a.upstream_matches, b.upstream_matches);
  EXPECT_EQ(a.srule_matches, b.srule_matches);
  EXPECT_EQ(a.default_matches, b.default_matches);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.header_pops, b.header_pops);
  EXPECT_EQ(a.header_pop_bytes, b.header_pop_bytes);
}

// Two identical fabrics over the same controller: one walks sends serially,
// the other in one batch. Each test compares every observable.
struct Harness {
  explicit Harness(std::size_t num_groups, std::uint64_t seed = 77)
      : topology{topo::ClosParams::small_test()},
        controller{topology, EncoderConfig{}},
        serial_fabric{topology},
        batch_fabric{topology} {
    util::Rng rng{seed};
    for (std::size_t gi = 0; gi < num_groups; ++gi) {
      const auto hosts = test::random_hosts(topology, 3 + rng.index(24), rng);
      std::vector<Member> members;
      for (std::size_t i = 0; i < hosts.size(); ++i) {
        members.push_back(Member{hosts[i], static_cast<std::uint32_t>(i),
                                 MemberRole::kBoth});
      }
      const auto id = controller.create_group(0, members);
      serial_fabric.install_group(controller, id);
      batch_fabric.install_group(controller, id);
      senders.push_back(hosts);
      ids.push_back(id);
    }
  }

  // Interleaves the groups: request r targets group r % num_groups, cycling
  // through that group's members as senders.
  std::vector<sim::SendRequest> interleaved_requests(std::size_t count) {
    std::vector<sim::SendRequest> requests;
    for (std::size_t r = 0; r < count; ++r) {
      const auto gi = r % ids.size();
      const auto& hosts = senders[gi];
      requests.push_back(sim::SendRequest{
          hosts[(r / ids.size()) % hosts.size()],
          controller.group(ids[gi]).address, 64 + 16 * gi});
    }
    return requests;
  }

  std::vector<sim::SendResult> run_serial(
      const std::vector<sim::SendRequest>& requests) {
    std::vector<sim::SendResult> results;
    for (const auto& request : requests) {
      results.push_back(serial_fabric.send(request.src, request.group,
                                           request.payload_bytes));
    }
    return results;
  }

  void expect_equivalent(const std::vector<sim::SendRequest>& requests,
                         const std::vector<sim::SendResult>& serial,
                         std::size_t threads) {
    const auto batched = batch_fabric.send_batch(
        std::span{requests}, sim::BatchOptions{threads});
    ASSERT_EQ(batched.size(), serial.size());
    for (std::size_t r = 0; r < serial.size(); ++r) {
      SCOPED_TRACE("request " + std::to_string(r) + ", threads " +
                   std::to_string(threads));
      expect_same_result(batched[r], serial[r]);
    }
    expect_same_walk_stats(batch_fabric.walk_stats(),
                           serial_fabric.walk_stats());
    EXPECT_EQ(batch_fabric.links(), serial_fabric.links());
    for (const auto layer :
         {topo::Layer::kLeaf, topo::Layer::kSpine, topo::Layer::kCore}) {
      expect_same_switch_stats(batch_fabric.aggregate_switch_stats(layer),
                               serial_fabric.aggregate_switch_stats(layer));
    }
  }

  topo::ClosTopology topology;
  Controller controller;
  sim::Fabric serial_fabric;
  sim::Fabric batch_fabric;
  std::vector<std::vector<topo::HostId>> senders;
  std::vector<GroupId> ids;
};

class BatchWalkEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchWalkEquivalence, SingleGroupMatchesSerial) {
  Harness h{1};
  const auto requests = h.interleaved_requests(12);
  h.expect_equivalent(requests, h.run_serial(requests), GetParam());
}

TEST_P(BatchWalkEquivalence, InterleavedGroupsMatchSerial) {
  Harness h{5};
  const auto requests = h.interleaved_requests(40);
  h.expect_equivalent(requests, h.run_serial(requests), GetParam());
}

TEST_P(BatchWalkEquivalence, LossDrawsMatchSerial) {
  Harness h{3};
  h.serial_fabric.set_loss(0.35, /*seed=*/1234);
  h.batch_fabric.set_loss(0.35, /*seed=*/1234);
  const auto requests = h.interleaved_requests(30);
  h.expect_equivalent(requests, h.run_serial(requests), GetParam());
}

TEST_P(BatchWalkEquivalence, ProvenanceTracesMatchSerial) {
  Harness h{3};
  obs::ProvenanceLog serial_log;
  obs::ProvenanceLog batch_log;
  h.serial_fabric.set_provenance(&serial_log);
  h.batch_fabric.set_provenance(&batch_log);
  h.serial_fabric.set_loss(0.2, /*seed=*/9);  // lost copies appear in traces
  h.batch_fabric.set_loss(0.2, /*seed=*/9);

  const auto requests = h.interleaved_requests(18);
  const auto serial = h.run_serial(requests);
  h.expect_equivalent(requests, serial, GetParam());

  ASSERT_EQ(batch_log.sends().size(), serial_log.sends().size());
  for (std::size_t s = 0; s < serial_log.sends().size(); ++s) {
    SCOPED_TRACE("trace " + std::to_string(s));
    EXPECT_EQ(obs::render_trace(batch_log.sends()[s]),
              obs::render_trace(serial_log.sends()[s]));
  }

  // The elements' sinks must be restored to the log after the batch: a
  // follow-up serial send records through the same log again.
  batch_log.clear();
  (void)h.batch_fabric.send(requests[0].src, requests[0].group,
                            std::size_t{64});
  EXPECT_EQ(batch_log.sends().size(), 1u);
}

// Per-send loss streams are keyed by send ordinal, not by walk mode: a batch
// that is split in two draws exactly what one big batch draws.
TEST_P(BatchWalkEquivalence, SplitBatchesMatchOneBatch) {
  Harness h{2};
  h.batch_fabric.set_loss(0.3, /*seed=*/42);
  h.serial_fabric.set_loss(0.3, /*seed=*/42);
  const auto requests = h.interleaved_requests(20);
  const auto serial = h.run_serial(requests);

  const std::span all{requests};
  const sim::BatchOptions options{GetParam()};
  auto first = h.batch_fabric.send_batch(all.first(7), options);
  auto rest = h.batch_fabric.send_batch(all.subspan(7), options);
  first.insert(first.end(), std::make_move_iterator(rest.begin()),
               std::make_move_iterator(rest.end()));
  ASSERT_EQ(first.size(), serial.size());
  for (std::size_t r = 0; r < serial.size(); ++r) {
    SCOPED_TRACE("request " + std::to_string(r));
    expect_same_result(first[r], serial[r]);
  }
}

// The full verify pipeline (controller encode -> codec -> walk -> delivery
// oracle) stays green when every diffed send goes through send_batch: a
// slice of the fuzz corpus run in batched-walk mode.
TEST_P(BatchWalkEquivalence, FuzzCorpusSliceDiffsCleanly) {
  verify::RunOptions options;
  options.walk_threads = GetParam();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto report = verify::run_scenario(
        verify::generate_scenario(seed), verify::Mutation::kNone, nullptr,
        options);
    EXPECT_TRUE(report.ok) << "seed " << seed << ": " << report.failure;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, BatchWalkEquivalence,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{8}),
                         [](const auto& info) {
                           return "T" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace elmo
