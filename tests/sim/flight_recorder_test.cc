// FlightRecorder bounded-buffer behavior and the elmo_recorder_stats
// metadata event the trace linter (scripts/lint_trace.py) keys on.
#include "sim/flight_recorder.h"

#include <gtest/gtest.h>

#include "elmo/controller.h"
#include "sim/fabric.h"

namespace elmo::sim {
namespace {

struct RecorderFixture : ::testing::Test {
  RecorderFixture()
      : topology{topo::ClosParams::small_test()},
        controller{topology, elmo::EncoderConfig{}},
        fabric{topology} {}

  elmo::GroupId make_group(const std::vector<topo::HostId>& hosts) {
    std::vector<elmo::Member> members;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      members.push_back(elmo::Member{hosts[i], static_cast<std::uint32_t>(i),
                                     elmo::MemberRole::kBoth});
    }
    const auto id = controller.create_group(0, members);
    fabric.install_group(controller, id);
    return id;
  }

  topo::ClosTopology topology;
  elmo::Controller controller;
  Fabric fabric;
};

TEST_F(RecorderFixture, BoundedBufferCountsDrops) {
  FlightRecorder recorder{8};
  fabric.set_recorder(&recorder);
  const auto id = make_group({0, 1, 17, 33});
  // Each send produces several work-item events plus a send instant; a
  // handful of sends overflows an 8-event buffer for sure.
  for (int i = 0; i < 8; ++i) {
    (void)fabric.send(0, controller.group(id).address, std::size_t{64});
  }
  EXPECT_EQ(recorder.size(), 8u);
  EXPECT_GT(recorder.dropped(), 0u);

  // The stats metadata event reports the same accounting, so consumers can
  // tell a complete trace from a truncated one.
  const auto json = recorder.chrome_trace_json();
  EXPECT_NE(json.find("\"elmo_recorder_stats\""), std::string::npos);
  EXPECT_NE(json.find("\"events\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"max_events\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": " +
                      std::to_string(recorder.dropped())),
            std::string::npos);
}

TEST_F(RecorderFixture, UnboundedRunReportsZeroDropped) {
  FlightRecorder recorder;  // default bound, far above one send
  fabric.set_recorder(&recorder);
  const auto id = make_group({0, 17});
  (void)fabric.send(0, controller.group(id).address, std::size_t{64});
  EXPECT_GT(recorder.size(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
  const auto json = recorder.chrome_trace_json();
  EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);
}

TEST_F(RecorderFixture, ClearResetsBufferAndDropCounter) {
  FlightRecorder recorder{2};
  fabric.set_recorder(&recorder);
  const auto id = make_group({0, 1});
  (void)fabric.send(0, controller.group(id).address, std::size_t{64});
  ASSERT_GT(recorder.dropped(), 0u);
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.dropped(), 0u);
}

}  // namespace
}  // namespace elmo::sim
