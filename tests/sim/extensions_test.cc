// Extension coverage: two-tier leaf-spine fabrics, loss injection with the
// PGM-style reliability layer, and multi-datacenter relay multicast.
#include <gtest/gtest.h>

#include "apps/multidc.h"
#include "apps/reliable.h"
#include "dataplane/common.h"
#include "elmo/evaluator.h"
#include "sim/fabric.h"
#include "testutil.h"

namespace elmo {
namespace {

// --- two-tier leaf-spine (paper: "qualitatively similar results") ----------

TEST(TwoTier, EncodingHasNoCoreSection) {
  const topo::ClosTopology t{topo::ClosParams::two_tier_leaf_spine()};
  const std::vector<topo::HostId> members{0, 40, 500, 900};
  const MulticastTree tree{t, members};
  EXPECT_FALSE(tree.spans_multiple_pods());
  const auto enc = tree.sender_encoding(0);
  EXPECT_FALSE(enc.core_pods);
  ASSERT_TRUE(enc.u_spine);
  EXPECT_FALSE(enc.u_spine->multipath);  // nothing above the spine tier
}

TEST(TwoTier, CrosscheckFabricVsEvaluator) {
  const topo::ClosTopology t{topo::ClosParams::two_tier_leaf_spine()};
  Controller controller{t, EncoderConfig{}};
  sim::Fabric fabric{t};
  const TrafficEvaluator evaluator{t};
  util::Rng rng{606};

  for (int trial = 0; trial < 10; ++trial) {
    const auto hosts = test::random_hosts(t, 3 + rng.index(40), rng);
    std::vector<Member> members;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      members.push_back(Member{hosts[i], static_cast<std::uint32_t>(i),
                               MemberRole::kBoth});
    }
    const auto id = controller.create_group(0, members);
    fabric.install_group(controller, id);
    const auto& g = controller.group(id);

    const auto fr = fabric.send(hosts[0], g.address, 512);
    const auto report = evaluator.evaluate(
        *g.tree, g.encoding, hosts[0], 512,
        dp::flow_hash(dp::host_address(hosts[0]), g.address));
    EXPECT_EQ(fr.total_wire_bytes, report.elmo_wire_bytes);
    EXPECT_TRUE(report.delivery.exactly_once());
    fabric.uninstall_group(controller, id);
    controller.remove_group(id);
  }
}

// --- loss injection + reliability layer ------------------------------------

struct LossFixture : ::testing::Test {
  LossFixture()
      : topology{topo::ClosParams::small_test()},
        controller{topology, EncoderConfig{}},
        fabric{topology} {}

  GroupId make_group(const std::vector<topo::HostId>& hosts) {
    std::vector<Member> members;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      members.push_back(Member{hosts[i], static_cast<std::uint32_t>(i),
                               MemberRole::kBoth});
    }
    const auto id = controller.create_group(0, members);
    fabric.install_group(controller, id);
    return id;
  }

  topo::ClosTopology topology;
  Controller controller;
  sim::Fabric fabric;
};

TEST_F(LossFixture, LossDropsSomeDeliveries) {
  const auto id = make_group({0, 17, 33, 49, 5, 21});
  fabric.set_loss(0.4, /*seed=*/9);
  std::size_t delivered = 0;
  for (int i = 0; i < 20; ++i) {
    delivered +=
        fabric.send(0, controller.group(id).address, 100).host_copies.size();
  }
  EXPECT_LT(delivered, 20u * 5u);  // strictly lossy
  EXPECT_GT(delivered, 0u);
}

TEST_F(LossFixture, ZeroLossIsLossless) {
  const auto id = make_group({0, 17, 33});
  fabric.set_loss(0.0);
  const auto result = fabric.send(0, controller.group(id).address, 100);
  EXPECT_EQ(result.host_copies.size(), 2u);
}

TEST_F(LossFixture, ReliableSessionRecoversEverything) {
  const auto id = make_group({0, 17, 33, 49, 5, 21, 37});
  fabric.set_loss(0.25, /*seed=*/31);
  apps::ReliableMulticastSession session{fabric, controller, id, 0};
  // NAKs and repairs are themselves lossy (25% per link over up-to-6-hop
  // paths), so convergence takes many cheap rounds.
  const auto report =
      session.publish(/*messages=*/25, /*payload=*/256, /*max_rounds=*/400);
  EXPECT_TRUE(report.all_delivered)
      << "rounds=" << report.repair_rounds
      << " retx=" << report.retransmissions;
  EXPECT_GT(report.naks, 0u);            // losses actually happened
  EXPECT_GT(report.retransmissions, 0u);
  EXPECT_EQ(report.data_multicasts, 25u);
}

TEST_F(LossFixture, ReliableSessionIsFreeWithoutLoss) {
  const auto id = make_group({0, 17, 33});
  fabric.set_loss(0.0);
  apps::ReliableMulticastSession session{fabric, controller, id, 0};
  const auto report = session.publish(10, 256);
  EXPECT_TRUE(report.all_delivered);
  EXPECT_EQ(report.naks, 0u);
  EXPECT_EQ(report.retransmissions, 0u);
  EXPECT_EQ(report.repair_rounds, 1u);  // one verification round
}

// --- multi-datacenter relay --------------------------------------------------

TEST(MultiDc, SpansTwoDatacenters) {
  const topo::ClosTopology topo_a{topo::ClosParams::small_test()};
  const topo::ClosTopology topo_b{topo::ClosParams::small_test()};
  Controller ctrl_a{topo_a, EncoderConfig{}};
  Controller ctrl_b{topo_b, EncoderConfig{}};
  sim::Fabric fab_a{topo_a};
  sim::Fabric fab_b{topo_b};

  apps::MultiDcGroup group{
      {{&fab_a, &ctrl_a}, {&fab_b, &ctrl_b}},
      /*tenant=*/3,
      {{0, 5, 17}, {2, 33, 49}}};

  const auto report = group.send(/*src_dc=*/0, /*src=*/0, /*payload=*/300);
  // 2 local members + 3 remote members (incl. relay) reached.
  EXPECT_EQ(report.hosts_reached, 5u);
  EXPECT_EQ(report.wan_unicasts, 1u);
  EXPECT_EQ(report.wan_wire_bytes, net::kOuterHeaderBytes + 300u);
  EXPECT_GT(report.intra_dc_wire_bytes, 0u);
}

TEST(MultiDc, EmptyRemoteDcCostsNothing) {
  const topo::ClosTopology topo_a{topo::ClosParams::small_test()};
  const topo::ClosTopology topo_b{topo::ClosParams::small_test()};
  Controller ctrl_a{topo_a, EncoderConfig{}};
  Controller ctrl_b{topo_b, EncoderConfig{}};
  sim::Fabric fab_a{topo_a};
  sim::Fabric fab_b{topo_b};

  apps::MultiDcGroup group{{{&fab_a, &ctrl_a}, {&fab_b, &ctrl_b}},
                           3,
                           {{0, 5}, {}}};
  const auto report = group.send(0, 0, 100);
  EXPECT_EQ(report.wan_unicasts, 0u);
  EXPECT_EQ(report.hosts_reached, 1u);
}

TEST(MultiDc, SendFromSecondDcRelaysBack) {
  const topo::ClosTopology topo_a{topo::ClosParams::small_test()};
  const topo::ClosTopology topo_b{topo::ClosParams::small_test()};
  Controller ctrl_a{topo_a, EncoderConfig{}};
  Controller ctrl_b{topo_b, EncoderConfig{}};
  sim::Fabric fab_a{topo_a};
  sim::Fabric fab_b{topo_b};

  apps::MultiDcGroup group{{{&fab_a, &ctrl_a}, {&fab_b, &ctrl_b}},
                           3,
                           {{0, 5}, {2, 33}}};
  const auto report = group.send(/*src_dc=*/1, /*src=*/33, 100);
  EXPECT_EQ(report.hosts_reached, 3u);  // DC-B: host 2; DC-A: hosts 0, 5
  EXPECT_EQ(report.wan_unicasts, 1u);
}

}  // namespace
}  // namespace elmo
