#include "sim/fabric.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace elmo::sim {
namespace {

struct FabricFixture : ::testing::Test {
  FabricFixture()
      : topology{topo::ClosParams::small_test()},
        controller{topology, elmo::EncoderConfig{}},
        fabric{topology} {}

  elmo::GroupId make_group(const std::vector<topo::HostId>& hosts) {
    std::vector<elmo::Member> members;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      members.push_back(elmo::Member{hosts[i], static_cast<std::uint32_t>(i),
                                     elmo::MemberRole::kBoth});
    }
    const auto id = controller.create_group(0, members);
    fabric.install_group(controller, id);
    return id;
  }

  topo::ClosTopology topology;
  elmo::Controller controller;
  Fabric fabric;
};

TEST_F(FabricFixture, SingleRackDelivery) {
  const auto id = make_group({0, 1, 2});
  const auto result =
      fabric.send(0, controller.group(id).address, 200);
  EXPECT_EQ(result.host_copies.size(), 2u);
  EXPECT_TRUE(result.host_copies.contains(1));
  EXPECT_TRUE(result.host_copies.contains(2));
  EXPECT_FALSE(result.host_copies.contains(0));  // no self-delivery
  EXPECT_EQ(result.vm_deliveries, 2u);
  EXPECT_EQ(result.max_hops, 1u);  // only the leaf
}

TEST_F(FabricFixture, CrossPodDelivery) {
  const auto id = make_group({0, 17, 35});
  const auto result = fabric.send(0, controller.group(id).address, 200);
  EXPECT_EQ(result.host_copies.size(), 2u);
  EXPECT_TRUE(result.host_copies.contains(17));
  EXPECT_TRUE(result.host_copies.contains(35));
  EXPECT_GE(result.max_hops, 4u);  // leaf-spine-core-spine-leaf
}

TEST_F(FabricFixture, EverySenderReachesEveryoneElse) {
  util::Rng rng{4711};
  const auto hosts = test::random_hosts(topology, 12, rng);
  const auto id = make_group(hosts);
  for (const auto sender : hosts) {
    const auto result =
        fabric.send(sender, controller.group(id).address, 64);
    for (const auto receiver : hosts) {
      if (receiver == sender) continue;
      EXPECT_EQ(result.host_copies.at(receiver), 1u)
          << "sender " << sender << " -> " << receiver;
    }
  }
}

TEST_F(FabricFixture, NonMemberCannotSend) {
  const auto id = make_group({0, 1});
  const auto result = fabric.send(60, controller.group(id).address, 64);
  EXPECT_TRUE(result.host_copies.empty());
  EXPECT_EQ(result.total_link_transmissions, 0u);
}

TEST_F(FabricFixture, HeaderBytesShrinkAlongThePath) {
  const auto id = make_group({0, 17});
  fabric.send(0, controller.group(id).address, 100);
  const auto& links = fabric.links();

  const NodeRef host0{topo::Layer::kHost, 0};
  const NodeRef leaf0{topo::Layer::kLeaf, 0};
  const auto first_hop = links.at({host0, leaf0}).bytes;

  // Find the final leaf->host delivery in pod 1.
  const NodeRef leaf4{topo::Layer::kLeaf, 4};
  const NodeRef host17{topo::Layer::kHost, 17};
  const auto last_hop = links.at({leaf4, host17}).bytes;

  EXPECT_GT(first_hop, last_hop);  // p-rules popped on the way
  EXPECT_EQ(last_hop, net::kOuterHeaderBytes + 100);
}

TEST_F(FabricFixture, SRuleGroupsStillDeliver) {
  // Tight header budget so most leaves use s-rules.
  elmo::EncoderConfig cfg;
  cfg.hmax_leaf_override = 1;
  elmo::Controller tight_controller{topology, cfg};
  Fabric tight_fabric{topology};

  util::Rng rng{99};
  const auto hosts = test::random_hosts(topology, 20, rng);
  std::vector<elmo::Member> members;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    members.push_back(elmo::Member{hosts[i], static_cast<std::uint32_t>(i),
                                   elmo::MemberRole::kBoth});
  }
  const auto id = tight_controller.create_group(0, members);
  ASSERT_GT(tight_controller.group(id).encoding.s_rule_count(), 0u);
  tight_fabric.install_group(tight_controller, id);

  const auto result =
      tight_fabric.send(hosts[0], tight_controller.group(id).address, 64);
  for (std::size_t i = 1; i < hosts.size(); ++i) {
    EXPECT_GE(result.host_copies.count(hosts[i]), 1u);
  }
}

TEST_F(FabricFixture, UninstallStopsDelivery) {
  const auto id = make_group({0, 17});
  fabric.uninstall_group(controller, id);
  const auto result = fabric.send(0, controller.group(id).address, 64);
  EXPECT_TRUE(result.host_copies.empty());
}

TEST_F(FabricFixture, UnicastPathsMatchLocality) {
  // Same rack: 2 hops.
  auto r = fabric.send_unicast(0, 1, 100);
  EXPECT_EQ(r.total_link_transmissions, 2u);
  // Same pod: 4 hops.
  r = fabric.send_unicast(0, 4, 100);
  EXPECT_EQ(r.total_link_transmissions, 4u);
  // Cross pod: 6 hops.
  r = fabric.send_unicast(0, 17, 100);
  EXPECT_EQ(r.total_link_transmissions, 6u);
  EXPECT_EQ(r.total_wire_bytes, 6u * (net::kOuterHeaderBytes + 100));
  // Self: nothing.
  r = fabric.send_unicast(3, 3, 100);
  EXPECT_EQ(r.total_link_transmissions, 0u);
}

TEST_F(FabricFixture, VmDeliveriesFollowLocalMembership) {
  // Two member VMs of the same group cannot share a host (one per tenant
  // host), but receive-only membership is still exercised.
  std::vector<elmo::Member> members{
      elmo::Member{0, 0, elmo::MemberRole::kSender},
      elmo::Member{5, 1, elmo::MemberRole::kReceiver},
  };
  const auto id = controller.create_group(1, members);
  fabric.install_group(controller, id);
  const auto result = fabric.send(0, controller.group(id).address, 64);
  EXPECT_EQ(result.vm_deliveries, 1u);
}

}  // namespace
}  // namespace elmo::sim
