// Dumps the generated P4_16 programs the controller would push to switches
// at boot time (paper §2; the authors' artifact is Elmo-MCast/p4-programs).
//
//   $ ./build/examples/p4_codegen            # network-switch program
//   $ ./build/examples/p4_codegen hypervisor # PISCES-style program
#include <cstring>
#include <iostream>

#include "elmo/encoder.h"
#include "p4gen/p4gen.h"

int main(int argc, char** argv) {
  using namespace elmo;
  const topo::ClosTopology topology{topo::ClosParams::facebook_fabric()};
  EncoderConfig cfg;
  const GroupEncoder encoder{topology, cfg};
  const auto options = p4gen::P4Options::from_config(cfg, encoder.hmax_leaf());

  const bool hypervisor =
      argc > 1 && std::strcmp(argv[1], "hypervisor") == 0;
  std::cout << (hypervisor
                    ? p4gen::hypervisor_switch_program(topology, options)
                    : p4gen::network_switch_program(topology, options));
  return 0;
}
