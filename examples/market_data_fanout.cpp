// Market-data fan-out: the financial-services workload from the paper's
// introduction (stock tickers delivered to many trading VMs with tight
// latency/throughput needs).
//
// A ticker publisher streams quotes to a growing set of subscriber VMs of
// one tenant, first over unicast (what public clouds force today), then
// over an Elmo multicast group, comparing publisher egress and fan-out
// behaviour on the simulated fabric.
//
//   $ ./build/examples/market_data_fanout
#include <iostream>

#include "apps/pubsub.h"
#include "util/rng.h"
#include "util/table.h"

using namespace elmo;

int main() {
  const topo::ClosTopology topology{topo::ClosParams{.pods = 4,
                                                     .leaves_per_pod = 8,
                                                     .spines_per_pod = 2,
                                                     .cores_per_plane = 4,
                                                     .hosts_per_leaf = 12}};
  Controller controller{topology, EncoderConfig{}};
  sim::Fabric fabric{topology};
  util::Rng rng{2024};

  constexpr std::size_t kQuoteBytes = 192;  // a typical ITCH-style burst
  const apps::HostModel host_model;         // calibrated in apps/pubsub.h

  util::TextTable table{{"trading VMs", "unicast quotes/s", "Elmo quotes/s",
                         "unicast egress Mbps", "Elmo egress Mbps"}};

  for (const std::size_t desks : {8u, 32u, 128u}) {
    std::vector<topo::HostId> subscribers;
    for (const auto h : rng.sample_indices(topology.num_hosts() - 1, desks)) {
      subscribers.push_back(static_cast<topo::HostId>(h + 1));
    }
    apps::PubSubSystem ticker{fabric, controller, /*tenant=*/42,
                              /*publisher=*/0, subscribers};

    const auto unicast = ticker.run(apps::TransportMode::kUnicast,
                                    kQuoteBytes, /*samples=*/3, host_model,
                                    /*offered=*/150'000.0);
    const auto elmo_run = ticker.run(apps::TransportMode::kElmo, kQuoteBytes,
                                     3, host_model, 150'000.0);

    if (unicast.messages_delivered != 3 || elmo_run.messages_delivered != 3) {
      std::cerr << "delivery failure!\n";
      return 1;
    }
    table.add_row({std::to_string(desks),
                   util::TextTable::fmt_si(unicast.throughput_rps, 1),
                   util::TextTable::fmt_si(elmo_run.throughput_rps, 1),
                   util::TextTable::fmt(unicast.publisher_egress_bps / 1e6, 1),
                   util::TextTable::fmt(elmo_run.publisher_egress_bps / 1e6, 1)});
  }

  std::cout << "Market-data fan-out on a " << topology.num_hosts()
            << "-host fabric (" << kQuoteBytes << "-byte quotes)\n"
            << table.render()
            << "Elmo sustains the full quote rate at constant publisher "
               "egress; unicast collapses as desks subscribe.\n";
  return 0;
}
