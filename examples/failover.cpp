// Failure handling (§3.3): what happens to a multicast group when a spine
// switch dies.
//
// Creates a cross-pod group, shows the multipath header, fails a spine,
// and shows the controller's recomputed header: multipath off, explicit
// upstream ports chosen by greedy set cover, traffic steered around the
// dead plane — all without touching any network switch.
//
//   $ ./build/examples/failover
#include <iostream>

#include "dataplane/common.h"
#include "elmo/controller.h"
#include "elmo/evaluator.h"

using namespace elmo;

namespace {

void describe_header(const topo::ClosTopology& topology,
                     const std::vector<std::uint8_t>& header,
                     const std::string& label) {
  const HeaderCodec codec{topology};
  const auto parsed = codec.parse(header);
  std::cout << label << ": " << header.size() << " bytes\n";
  std::cout << "  u-leaf : down=" << parsed.u_leaf->down.to_string()
            << " up=" << parsed.u_leaf->up.to_string()
            << (parsed.u_leaf->multipath ? " |M (multipath)" : " (explicit)")
            << "\n";
  if (parsed.u_spine) {
    std::cout << "  u-spine: down=" << parsed.u_spine->down.to_string()
              << " up=" << parsed.u_spine->up.to_string()
              << (parsed.u_spine->multipath ? " |M (multipath)"
                                            : " (explicit)")
              << "\n";
  }
  if (parsed.core_pods) {
    std::cout << "  core   : pods=" << parsed.core_pods->to_string() << "\n";
  }
}

}  // namespace

int main() {
  const topo::ClosTopology topology{topo::ClosParams::small_test()};
  Controller controller{topology, EncoderConfig{}};

  // A group spanning three pods.
  std::vector<Member> members;
  std::uint32_t vm = 0;
  for (const topo::HostId h : {0, 1, 18, 35, 49}) {
    members.push_back(Member{h, vm++, MemberRole::kBoth});
  }
  const auto group = controller.create_group(/*tenant=*/1, members);
  const auto& state = controller.group(group);

  describe_header(topology, controller.header_for(group, 0),
                  "header before failure (sender host 0)");

  // Verify delivery via the analytic walk with the healthy fabric.
  const TrafficEvaluator evaluator{topology};
  auto report = evaluator.evaluate(*state.tree, state.encoding, 0, 256,
                                   dp::flow_hash(dp::host_address(0),
                                                 state.address));
  std::cout << "healthy fabric: " << report.delivery.members_reached << "/"
            << report.delivery.members_expected << " receivers reached\n\n";

  // --- fail a spine ---------------------------------------------------------
  const auto victim = topology.spine_at(/*pod=*/0, /*plane=*/0);
  std::cout << "failing spine " << victim << " (pod 0, plane 0)...\n";
  const auto impact = controller.fail_spine(victim);
  std::cout << "controller: " << impact.groups_affected
            << " group(s) affected, " << impact.hypervisor_updates
            << " hypervisor update(s) issued; zero network switches touched\n\n";

  describe_header(topology, controller.header_for(group, 0),
                  "header after failure");

  // Walk the new header across the degraded fabric: delivery must survive.
  report = evaluator.evaluate(*state.tree, state.encoding, 0, 256, 0,
                              &controller.failures());
  std::cout << "degraded fabric: " << report.delivery.members_reached << "/"
            << report.delivery.members_expected << " receivers reached via "
            << report.elmo_link_transmissions << " transmissions\n";

  controller.restore_spine(victim);
  describe_header(topology, controller.header_for(group, 0),
                  "\nheader after restoration");
  return report.delivery.exactly_once() ? 0 : 1;
}
