// Multicast traceroute (paper §7, Monitoring): visualize the replication
// tree the data plane actually executes for a group, hop by hop, with the
// per-link header sizes showing the p-rules being popped.
//
//   $ ./build/examples/mtrace_tool
#include <iostream>

#include "sim/mtrace.h"

using namespace elmo;

int main() {
  const topo::ClosTopology topology{topo::ClosParams::small_test()};
  Controller controller{topology, EncoderConfig{}};
  sim::Fabric fabric{topology};

  // A three-pod group.
  std::vector<Member> members;
  std::uint32_t vm = 0;
  for (const topo::HostId h : {0, 2, 6, 17, 18, 35}) {
    members.push_back(Member{h, vm++, MemberRole::kBoth});
  }
  const auto group = controller.create_group(/*tenant=*/1, members);
  fabric.install_group(controller, group);

  std::cout << "group " << controller.group(group).address.to_string()
            << ", members on hosts 0, 2, 6, 17, 18, 35\n\n";
  const auto report = sim::mtrace(fabric, controller, group, /*sender=*/0,
                                  /*payload=*/128);
  std::cout << report.render();
  std::cout << "\nnote how the on-wire size shrinks at each tier: the "
               "upstream sections, the core bitmap and the spine rules are "
               "popped as the packet descends; hosts receive clean VXLAN "
               "frames.\n";

  // Now degrade the fabric and trace again.
  const auto victim = topology.spine_at(0, 0);
  controller.fail_spine(victim);
  fabric.install_group(controller, group);  // refresh sender headers
  std::cout << "\nafter failing spine S" << victim
            << " (multipath off, explicit uplinks):\n";
  const auto degraded = sim::mtrace(fabric, controller, group, 0, 128);
  std::cout << degraded.render();
  return report.members_reached == 5 && degraded.members_reached == 5 ? 0 : 1;
}
