// Host telemetry fan-out: the sFlow scenario from §5.2.2.
//
// Multiple teams attach collectors to a host agent's metric stream. With
// Elmo, adding a collector costs the agent nothing: one multicast datagram
// serves them all, and the network replicates at line rate.
//
//   $ ./build/examples/telemetry_fanout
#include <iostream>

#include "apps/telemetry.h"
#include "util/rng.h"
#include "util/table.h"

using namespace elmo;

int main() {
  const topo::ClosTopology topology{topo::ClosParams{.pods = 4,
                                                     .leaves_per_pod = 8,
                                                     .spines_per_pod = 2,
                                                     .cores_per_plane = 4,
                                                     .hosts_per_leaf = 12}};
  Controller controller{topology, EncoderConfig{}};
  sim::Fabric fabric{topology};
  util::Rng rng{7};

  const apps::TelemetryConfig config;  // 5 samples/s of 94-byte records

  util::TextTable table{
      {"collectors", "unicast agent egress", "Elmo agent egress",
       "datagrams delivered"}};
  for (const std::size_t teams : {2u, 8u, 24u, 64u}) {
    std::vector<topo::HostId> collectors;
    for (const auto h : rng.sample_indices(topology.num_hosts() - 1, teams)) {
      collectors.push_back(static_cast<topo::HostId>(h + 1));
    }
    apps::TelemetrySystem sflow{fabric, controller, /*tenant=*/9,
                                /*agent=*/0, collectors};
    const auto unicast = sflow.run(/*use_elmo=*/false, config, 2);
    const auto elmo_run = sflow.run(/*use_elmo=*/true, config, 2);
    table.add_row(
        {std::to_string(teams),
         util::TextTable::fmt(unicast.agent_egress_bps / 1000.0, 1) + " Kbps",
         util::TextTable::fmt(elmo_run.agent_egress_bps / 1000.0, 1) + " Kbps",
         std::to_string(unicast.datagrams_delivered) + " / " +
             std::to_string(elmo_run.datagrams_delivered)});
  }
  std::cout << "sFlow-style telemetry from one agent host\n" << table.render();
  std::cout << "unicast egress grows with every team; Elmo stays one stream "
               "(paper: 370.4 Kbps vs 5.8 Kbps at 64 collectors).\n";
  return 0;
}
