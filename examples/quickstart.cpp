// Quickstart: the paper's running example (Fig. 3) end to end.
//
// Builds the 4-pod Clos from §3.1, creates the 6-member multicast group
// {Ha, Hb, Hk, Hm, Hn, Hp}, inspects the p-rules and the serialized Elmo
// header, and sends a packet from Ha through the packet-level data plane.
//
//   $ ./build/examples/quickstart
#include <iostream>

#include "elmo/controller.h"
#include "sim/fabric.h"

using namespace elmo;

namespace {

const char* host_name(topo::HostId h) {
  static const char* names[] = {"Ha", "Hb", "Hc", "Hd", "He", "Hf",
                                "Hg", "Hh", "Hi", "Hj", "Hk", "Hl",
                                "Hm", "Hn", "Ho", "Hp"};
  return names[h];
}

}  // namespace

int main() {
  // --- topology and control plane ------------------------------------------
  const topo::ClosTopology topology{topo::ClosParams::running_example()};
  std::cout << "fabric: " << topology.num_pods() << " pods x "
            << topology.params().leaves_per_pod << " leaves x "
            << topology.params().hosts_per_leaf << " hosts = "
            << topology.num_hosts() << " hosts\n";

  EncoderConfig config;
  config.redundancy_limit = 2;     // the figure's R = 2 column
  config.hmax_spine = 2;
  config.hmax_leaf_override = 2;
  config.kmax = 2;
  config.kmax_spine = 2;
  Controller controller{topology, config};
  sim::Fabric fabric{topology};

  // --- create the Fig. 3 group ---------------------------------------------
  // Ha(0), Hb(1) under L0; Hk(10) under L5; Hm(12), Hn(13) under L6;
  // Hp(15) under L7.
  std::vector<Member> members;
  std::uint32_t vm = 0;
  for (const topo::HostId h : {0, 1, 10, 12, 13, 15}) {
    members.push_back(Member{h, vm++, MemberRole::kBoth});
  }
  const auto group = controller.create_group(/*tenant=*/7, members);
  const auto& state = controller.group(group);
  std::cout << "group " << state.address.to_string() << " with "
            << state.members.size() << " members\n\n";

  // --- inspect the encoding -------------------------------------------------
  std::cout << "downstream spine p-rules (bitmap over a pod's leaf ports):\n";
  for (const auto& rule : state.encoding.spine.p_rules) {
    std::cout << "  " << rule.bitmap.to_string() << " : pods [";
    for (const auto id : rule.switch_ids) std::cout << " P" << id;
    std::cout << " ]\n";
  }
  std::cout << "downstream leaf p-rules (bitmap over a leaf's host ports):\n";
  for (const auto& rule : state.encoding.leaf.p_rules) {
    std::cout << "  " << rule.bitmap.to_string() << " : leaves [";
    for (const auto id : rule.switch_ids) std::cout << " L" << id;
    std::cout << " ]\n";
  }
  std::cout << "s-rules: " << state.encoding.s_rule_count()
            << ", default p-rule: "
            << (state.encoding.uses_default() ? "yes" : "no") << "\n\n";

  // --- the header Ha's hypervisor pushes ------------------------------------
  const auto header = controller.header_for(group, /*Ha=*/0);
  std::cout << "Elmo header for sender Ha: " << header.size() << " bytes:";
  for (const auto byte : header) {
    std::cout << ' ' << std::hex << static_cast<int>(byte >> 4)
              << static_cast<int>(byte & 0xf) << std::dec;
  }
  std::cout << "\n\n";

  // --- send a packet through the simulated data plane -----------------------
  fabric.install_group(controller, group);
  const auto result = fabric.send(/*Ha=*/0, state.address, /*payload=*/100);
  std::cout << "packet from Ha reached " << result.host_copies.size()
            << " hosts over " << result.total_link_transmissions
            << " link transmissions (" << result.total_wire_bytes
            << " wire bytes):\n";
  for (const auto& [host, copies] : result.host_copies) {
    const bool member = state.tree->is_member(host);
    std::cout << "  " << host_name(host) << " x" << copies
              << (member ? ""
                         : "  (redundant copy from R=2 bitmap sharing; the "
                           "hypervisor discards it)")
              << "\n";
  }
  std::cout << "\nFig. 3b check: L0 delivered to Hb locally, the core fanned "
               "out to pods P2 and P3, and every p-rule layer was popped "
               "before reaching the hosts.\n";
  return 0;
}
