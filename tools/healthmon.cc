// Gray-failure health monitor driver ("is my fabric healthy?").
//
// Replays the membership of one fuzz scenario into a controller + fabric,
// then runs a windowed send loop while sampling the fabric into a
// TimeSeriesStore and ticking the HealthMonitor once per window
// (DESIGN.md §14). Mid-run it silently injects a gray failure — the
// controller and oracle are NOT told, exactly like a real partial failure —
// and prints the incident timeline the detectors reconstruct from counter
// deltas alone. Newly opened incidents get the rendered decision tree of
// the window's last send attached (verify::explain_send), so the report
// carries both the statistical evidence and one concrete affected send.
//
// Flags (KEY=VALUE, --key=value, or ELMO_<KEY> env):
//   --seed=N          scenario seed to replay (default 1)
//   --loss_pct=P      inject global random loss of P percent (default 0)
//   --fail_link=L:S   black-hole both directions of the leaf L <-> spine S
//                     link (100% directed loss)
//   --fail_switch=W   silently down a switch: spine:<id>, core:<id>,
//                     spine:all, or core:all
//   --windows=N       sampling windows to run (default 12)
//   --sends=N         multicast sends per window (default 16)
//   --inject_at=N     window index at which the failure engages (default 3)
//   --expect=CLASS    exit nonzero unless an incident of CLASS was raised;
//                     "none" asserts a fully clean run (CI smoke contract)
//   --json=PATH       also write the incident report as JSON (the schema
//                     scripts/lint_metrics.py --incidents checks)
//   --verbose=1       per-window progress lines
//
// Example: tools/healthmon --seed=7 --loss_pct=2 --expect=link-loss
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "elmo/controller.h"
#include "obs/health.h"
#include "obs/provenance.h"
#include "obs/timeseries.h"
#include "sim/fabric.h"
#include "util/flags.h"
#include "verify/explain.h"
#include "verify/oracle.h"
#include "verify/scenario.h"

namespace {

using namespace elmo;

bool host_on_legacy_leaf(const topo::ClosTopology& topo,
                         const std::vector<bool>& legacy, topo::HostId host) {
  if (legacy.empty()) return false;
  const auto leaf = topo.leaf_of_host(host);
  return leaf < legacy.size() && legacy[leaf];
}

struct Injection {
  double loss_pct = 0;
  bool has_link = false;
  topo::LeafId link_leaf = 0;
  topo::SpineId link_spine = 0;
  enum class SwitchKind { kNone, kSpine, kCore } switch_kind = SwitchKind::kNone;
  bool switch_all = false;
  std::uint32_t switch_id = 0;
};

bool parse_injection(const util::Flags& flags, Injection& inj) {
  inj.loss_pct = flags.get_double("LOSS_PCT", 0.0);
  if (const auto spec = flags.get_string("FAIL_LINK", ""); !spec.empty()) {
    const auto colon = spec.find(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "healthmon: bad --fail_link=%s (want L:S)\n",
                   spec.c_str());
      return false;
    }
    inj.has_link = true;
    inj.link_leaf = static_cast<topo::LeafId>(std::stoul(spec.substr(0, colon)));
    inj.link_spine =
        static_cast<topo::SpineId>(std::stoul(spec.substr(colon + 1)));
  }
  if (const auto spec = flags.get_string("FAIL_SWITCH", ""); !spec.empty()) {
    const auto colon = spec.find(':');
    const auto kind = spec.substr(0, colon);
    if (colon == std::string::npos ||
        (kind != "spine" && kind != "core")) {
      std::fprintf(stderr,
                   "healthmon: bad --fail_switch=%s (want spine:<id|all> or "
                   "core:<id|all>)\n",
                   spec.c_str());
      return false;
    }
    inj.switch_kind = kind == "spine" ? Injection::SwitchKind::kSpine
                                      : Injection::SwitchKind::kCore;
    const auto id = spec.substr(colon + 1);
    if (id == "all") {
      inj.switch_all = true;
    } else {
      inj.switch_id = static_cast<std::uint32_t>(std::stoul(id));
    }
  }
  return true;
}

void apply_injection(const Injection& inj, sim::Fabric& fabric,
                     std::uint64_t seed, const topo::ClosTopology& topo) {
  if (inj.loss_pct > 0) fabric.set_loss(inj.loss_pct / 100.0, seed);
  if (inj.has_link) {
    const sim::NodeRef leaf{topo::Layer::kLeaf, inj.link_leaf};
    const sim::NodeRef spine{topo::Layer::kSpine, inj.link_spine};
    fabric.set_link_loss(leaf, spine, 1.0);
    fabric.set_link_loss(spine, leaf, 1.0);
  }
  switch (inj.switch_kind) {
    case Injection::SwitchKind::kSpine:
      if (inj.switch_all) {
        for (topo::SpineId s = 0; s < topo.num_spines(); ++s) {
          fabric.spine(s).set_down(true);
        }
      } else {
        fabric.spine(inj.switch_id % topo.num_spines()).set_down(true);
      }
      break;
    case Injection::SwitchKind::kCore:
      if (inj.switch_all) {
        for (topo::CoreId c = 0; c < topo.num_cores(); ++c) {
          fabric.core(c).set_down(true);
        }
      } else {
        fabric.core(inj.switch_id % topo.num_cores()).set_down(true);
      }
      break;
    case Injection::SwitchKind::kNone:
      break;
  }
}

std::string describe_injection(const Injection& inj) {
  std::string out;
  if (inj.loss_pct > 0) {
    out += "global loss " + std::to_string(inj.loss_pct) + "%";
  }
  if (inj.has_link) {
    if (!out.empty()) out += ", ";
    out += "black-holed link leaf" + std::to_string(inj.link_leaf) +
           " <-> spine" + std::to_string(inj.link_spine);
  }
  if (inj.switch_kind != Injection::SwitchKind::kNone) {
    if (!out.empty()) out += ", ";
    const char* kind =
        inj.switch_kind == Injection::SwitchKind::kSpine ? "spine" : "core";
    out += std::string{"downed "} + kind + ":" +
           (inj.switch_all ? "all" : std::to_string(inj.switch_id));
  }
  return out.empty() ? "none" : out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags{argc, argv};
  const auto seed = static_cast<std::uint64_t>(flags.get_int("SEED", 1));
  const auto windows = static_cast<std::size_t>(flags.get_int("WINDOWS", 12));
  const auto sends_per_window =
      static_cast<std::size_t>(flags.get_int("SENDS", 16));
  const auto inject_at =
      static_cast<std::size_t>(flags.get_int("INJECT_AT", 3));
  const auto expect = flags.get_string("EXPECT", "");
  const auto json_path = flags.get_string("JSON", "");
  const bool verbose = flags.get_bool("VERBOSE", false);

  Injection inj;
  if (!parse_injection(flags, inj)) return 2;

  // Scenario replay: membership only. Switch failures and sends from the
  // script are skipped — the windowed loop below is the traffic source, and
  // the only failures present are the silently injected ones.
  auto scenario = verify::generate_scenario(seed);
  const topo::ClosTopology topo{scenario.params};
  Controller controller{topo, scenario.config};
  sim::Fabric fabric{topo};
  auto legacy = scenario.legacy_leaves;
  if (!legacy.empty()) {
    legacy.resize(topo.num_leaves(), false);
    controller.set_legacy_leaves(legacy);
    for (topo::LeafId l = 0; l < topo.num_leaves(); ++l) {
      if (legacy[l]) fabric.leaf(l).set_legacy(true);
    }
  }
  verify::DeliveryOracle oracle{topo, legacy};

  std::vector<GroupId> ids;
  for (const auto& g : scenario.groups) {
    ids.push_back(
        controller.create_group(g.tenant, std::span<const Member>{g.members}));
    oracle.create_group(g.members);
  }
  for (const auto& ev : scenario.events) {
    switch (ev.kind) {
      case verify::EventKind::kJoin:
        controller.join(ids.at(ev.group_index), ev.member);
        oracle.join(ev.group_index, ev.member);
        break;
      case verify::EventKind::kLeave:
        controller.leave(ids.at(ev.group_index), ev.member.host, ev.member.vm);
        oracle.leave(ev.group_index, ev.member.host, ev.member.vm);
        break;
      case verify::EventKind::kHostFail:
        for (std::size_t gi = 0; gi < ids.size(); ++gi) {
          const auto members = oracle.members(gi);  // copy: leave mutates
          for (const auto& m : members) {
            if (m.host != ev.member.host) continue;
            controller.leave(ids.at(gi), m.host, m.vm);
            oracle.leave(gi, m.host, m.vm);
          }
        }
        break;
      default:
        break;  // failures / sends: not part of the membership replay
    }
  }
  // Causal context for incident reports (DESIGN.md §15): the bulk install
  // gets one trace, each sampling window gets its own, and every opened
  // incident carries the IDs of the windows it was active in (plus the
  // install trace) so `trace_ids` in the JSON joins back to a timeline.
  obs::Tracer tracer;
  std::uint64_t install_trace = 0;
  {
    const auto ictx = tracer.begin_span(
        "healthmon:install", obs::TraceLane::kInstall, {},
        {{"groups", static_cast<double>(ids.size())}});
    install_trace = ictx.trace_id;
    for (const auto id : ids) fabric.install_group(controller, id);
    tracer.end_span(ictx);
  }

  // Flattened (group, sender) round-robin so every window exercises every
  // group's trees.
  struct SendSlot {
    std::size_t gi;
    topo::HostId sender;
  };
  std::vector<SendSlot> slots;
  for (std::size_t gi = 0; gi < ids.size(); ++gi) {
    for (const auto& m : oracle.members(gi)) {
      if (!can_send(m.role)) continue;
      if (host_on_legacy_leaf(topo, legacy, m.host)) continue;
      const auto dup = std::find_if(
          slots.begin(), slots.end(), [&](const SendSlot& s) {
            return s.gi == gi && s.sender == m.host;
          });
      if (dup == slots.end()) slots.push_back(SendSlot{gi, m.host});
    }
  }
  if (slots.empty()) {
    std::fprintf(stderr, "healthmon: seed %llu has no eligible senders\n",
                 static_cast<unsigned long long>(seed));
    return 2;
  }

  obs::TimeSeriesStore store{64};
  obs::HealthMonitor monitor{store};
  obs::add_default_detectors(monitor);
  obs::ProvenanceLog prov;
  fabric.set_provenance(&prov);
  std::vector<std::uint64_t> window_traces;

  std::printf("healthmon: seed=%llu groups=%zu slots=%zu windows=%zu "
              "sends/window=%zu inject@%zu (%s)\n",
              static_cast<unsigned long long>(seed), ids.size(), slots.size(),
              windows, sends_per_window, inject_at,
              describe_injection(inj).c_str());

  double expected_vm_total = 0;
  std::size_t slot_cursor = 0;
  bool injected = false;
  for (std::size_t w = 0; w < windows; ++w) {
    if (!injected && w >= inject_at) {
      apply_injection(inj, fabric, seed, topo);
      injected = true;
      if (verbose) std::printf("window %zu: failure injected\n", w);
    }
    const auto wctx = tracer.begin_span("healthmon:window",
                                        obs::TraceLane::kControl, {},
                                        {{"window", static_cast<double>(w)}});
    window_traces.push_back(wctx.trace_id);
    std::string last_explanation;
    for (std::size_t s = 0; s < sends_per_window; ++s) {
      const auto& slot = slots[slot_cursor++ % slots.size()];
      const auto& g = controller.group(ids.at(slot.gi));
      const auto ex = oracle.expect(slot.gi, g.encoding, slot.sender);
      prov.clear();
      (void)fabric.send(slot.sender, g.address, std::size_t{64});
      for (const auto& [host, vms] : ex.expected_hosts) {
        expected_vm_total += static_cast<double>(vms);
      }
      if (!prov.empty()) {
        last_explanation = verify::explain_send(prov.last(), ex).render();
      }
    }
    fabric.sample_into(store);
    store.append("elmo_expect_vm_deliveries_total", expected_vm_total);
    store.advance();
    tracer.end_span(wctx);
    const auto opened = monitor.tick();
    for (const auto idx : opened) {
      if (monitor.incidents()[idx].explanation.empty() &&
          !last_explanation.empty()) {
        monitor.attach_explanation(idx, last_explanation);
        break;  // one attachment per window is plenty
      }
    }
    // Contributing traces: the install plus every window the incident has
    // been active in so far (attach_traces replaces, so flaps re-attach).
    for (const auto idx : opened) {
      const auto& inc = monitor.incidents()[idx];
      std::vector<std::uint64_t> contributing{install_trace};
      // Incident windows count COMPLETED windows (store.window() after
      // advance()), so window W is the loop iteration W-1.
      for (auto w2 = std::max<std::uint64_t>(inc.first_window, 1);
           w2 <= inc.last_window && w2 - 1 < window_traces.size(); ++w2) {
        contributing.push_back(window_traces[w2 - 1]);
      }
      monitor.attach_traces(idx, std::move(contributing));
    }
    if (verbose || !opened.empty()) {
      std::printf("window %zu: %zu incident(s) opened, %zu open total\n", w,
                  opened.size(), monitor.open_count());
    }
  }

  std::printf("\n%s", monitor.render_text().c_str());

  if (!json_path.empty()) {
    std::ofstream out{json_path};
    if (!out) {
      std::fprintf(stderr, "healthmon: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << monitor.render_json();
    std::printf("incident JSON written to %s\n", json_path.c_str());
  }

  if (!expect.empty()) {
    if (expect == "none") {
      if (!monitor.incidents().empty()) {
        std::printf("FAIL: expected a clean run, got %zu incident(s)\n",
                    monitor.incidents().size());
        return 1;
      }
      std::printf("OK: clean run, no incidents\n");
    } else {
      if (!monitor.has_incident(expect)) {
        std::printf("FAIL: expected an incident of class %s\n",
                    expect.c_str());
        return 1;
      }
      std::printf("OK: incident of class %s detected\n", expect.c_str());
    }
  }
  return 0;
}
