// Differential delivery-oracle fuzz driver.
//
// Plain mode walks SEEDS consecutive seeds (starting at BASE_SEED), runs
// each generated scenario through the full pipeline (Controller encode ->
// header codec -> sim::Fabric walk), and diffs every observable against the
// set-based DeliveryOracle. The first divergence prints its seed, shrinks to
// a minimal repro, and emits a ready-to-paste GoogleTest fixture — plus,
// alongside it, the failing scenario's metrics snapshot, flight-recorder
// trace, and per-send decision-tree explanations (fuzz_seed_<N>.metrics.prom
// / .metrics.json / .trace.json / .explain.txt), so triage starts from
// counters and attributed deliveries instead of a rerun.
//
// Mutation mode (--mutate=1) validates the harness itself: every known
// fault in the catalog is seeded into the pipeline and MUST be caught by
// the differ on some seed — a mutation that survives means the harness has
// a blind spot and the run fails.
//
// Flags (KEY=VALUE, --key=value, or ELMO_<KEY> env):
//   --seeds=N        seeds to walk (default 50)
//   --base_seed=N    first seed (default 1)
//   --seed=N         run exactly one seed (overrides --seeds)
//   --encoder=NAME   force every scenario onto one TreeEncoder
//                    (elmo / bert / p3fa; default: as generated per seed)
//   --mutate=1       run the mutation self-check instead of plain fuzzing
//   --shrink=0       disable shrinking on failure
//   --verbose=1      per-seed progress lines
//   --metrics=<path> aggregate telemetry over the whole campaign; written at
//                    exit ("-" = stderr, ".json" = JSON dump)
//   --trace=<path>   single-seed replay only: record the fabric walk as
//                    chrome://tracing JSON
//   --artifacts=DIR  where failing-seed dumps land (default ".")
//   --walk_threads=N diff sends through the batched fabric walk
//                    (send_batch) with N workers instead of the serial
//                    send() reference (default 0 = serial)
//   --churn_events=N append N extra churn events (join/leave-biased, with
//                    periodic sends) to every scenario and run it through
//                    the STREAMING control plane: incremental re-encode +
//                    coalesced delta installs over the p4rt wire channel,
//                    with the installed fabric state digest-diffed against
//                    a fresh batch install after every event (default 0)
//   --delta=1        delta installs + continuous state diff without extra
//                    churn events (implied by --churn_events)
//
// Replaying a CI failure: tools/fuzz_pipeline --seed=<reported seed>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "elmo/tree_encoder.h"
#include "obs/metrics.h"
#include "sim/flight_recorder.h"
#include "util/flags.h"
#include "verify/differ.h"
#include "verify/scenario.h"
#include "verify/shrink.h"

namespace {

using elmo::EncoderKind;
using elmo::verify::Mutation;
using elmo::verify::RunObservability;
using elmo::verify::RunReport;
using elmo::verify::Scenario;

struct Options {
  bool do_shrink = true;
  bool verbose = false;
  // 0 = serial Fabric::send(); N >= 1 = batched walk with N workers, so the
  // whole campaign doubles as a serial/batched equivalence sweep.
  std::size_t walk_threads = 0;
  std::string metrics;    // campaign-wide exposition path; empty = off
  std::string trace;      // single-seed replay trace path; empty = off
  std::string artifacts = ".";
  // When set, every generated scenario is forced onto this encoder kind
  // (replaying a matrix-job failure, or isolating one scheme).
  std::optional<EncoderKind> encoder;
  // Extra churn events appended to every scenario (--churn_events=N).
  std::size_t churn_events = 0;
  // Stream membership events through elmo::stream::ControlPlane as delta
  // installs, with the continuous fabric-state diff (--delta, implied by
  // --churn_events).
  bool delta_installs = false;
};

// Salt for the appended-churn rng stream; any fixed value works, it only
// has to be stable so --seed=N replays the CI campaign's exact script.
constexpr std::uint64_t kChurnSalt = 0xc4u;

Scenario make_scenario(std::uint64_t seed, const Options& opt) {
  auto scenario = elmo::verify::generate_scenario(seed);
  if (opt.encoder) scenario.config.encoder = *opt.encoder;
  if (opt.churn_events > 0) {
    elmo::verify::append_churn_events(scenario, opt.churn_events, kChurnSalt);
  }
  return scenario;
}

// Re-runs the failing scenario with a private registry, recorder, and
// provenance capture, and dumps snapshot, trace, and per-send decision-tree
// explanations next to the shrunken fixture.
void dump_failure_artifacts(const Scenario& scenario, const Options& opt) {
  elmo::obs::MetricsRegistry registry{/*enabled=*/true};
  elmo::sim::FlightRecorder recorder;
  std::vector<elmo::verify::SendCapture> captures;
  RunObservability observability{&registry, &recorder, &captures};
  elmo::verify::RunOptions run_options;
  run_options.delta_installs = opt.delta_installs;
  const auto replay = elmo::verify::run_scenario(
      scenario, Mutation::kNone, &observability, run_options);

  const auto stem = opt.artifacts + "/fuzz_seed_" +
                    std::to_string(scenario.seed) + "_" +
                    elmo::to_string(scenario.config.encoder);
  const auto snap = registry.snapshot();
  elmo::obs::write_metrics(stem + ".metrics.prom", snap);
  elmo::obs::write_metrics(stem + ".metrics.json", snap);
  recorder.write(stem + ".trace.json");

  std::ofstream explain{stem + ".explain.txt"};
  explain << "seed " << scenario.seed << ": " << replay.failure << "\n";
  if (!replay.explanation.empty()) {
    explain << "\n=== failing send ===\n" << replay.explanation;
  }
  for (const auto& capture : captures) {
    explain << "\n=== event #" << capture.event_index << ", group "
            << capture.group_index << ", from host " << capture.sender
            << " ===\n"
            << capture.explanation.render();
  }

  std::printf("failure artifacts: %s.metrics.prom, %s.metrics.json, "
              "%s.trace.json, %s.explain.txt\n",
              stem.c_str(), stem.c_str(), stem.c_str(), stem.c_str());
}

void report_failure(const Scenario& scenario, const RunReport& report,
                    const Options& opt) {
  std::printf("FAIL seed=%llu encoder=%s: %s\n",
              static_cast<unsigned long long>(scenario.seed),
              elmo::to_string(scenario.config.encoder),
              report.failure.c_str());
  std::string replay_extras;
  if (opt.encoder) {
    replay_extras += " --encoder=";
    replay_extras += elmo::to_string(*opt.encoder);
  }
  if (opt.churn_events > 0) {
    replay_extras += " --churn_events=" + std::to_string(opt.churn_events);
  } else if (opt.delta_installs) {
    replay_extras += " --delta=1";
  }
  std::printf("replay: tools/fuzz_pipeline --seed=%llu%s\n",
              static_cast<unsigned long long>(scenario.seed),
              replay_extras.c_str());
  dump_failure_artifacts(scenario, opt);
  if (!opt.do_shrink) return;
  elmo::verify::RunOptions shrink_options;
  shrink_options.delta_installs = opt.delta_installs;
  const auto minimal = elmo::verify::shrink(
      scenario, Mutation::kNone, /*budget=*/600, shrink_options);
  const auto shrunk =
      elmo::verify::run_scenario(minimal, Mutation::kNone, nullptr,
                                 shrink_options);
  std::printf("shrunk to %zu group(s), %zu event(s): %s\n",
              minimal.groups.size(), minimal.events.size(),
              shrunk.failure.c_str());
  std::printf("--- minimal repro fixture ---\n%s",
              elmo::verify::to_fixture(minimal).c_str());
}

int run_plain(std::uint64_t base, std::size_t seeds, const Options& opt) {
  elmo::obs::MetricsRegistry* registry = nullptr;
  if (!opt.metrics.empty()) {
    registry = &elmo::obs::MetricsRegistry::global();
    registry->set_enabled(true);
  }
  elmo::sim::FlightRecorder recorder;
  // Unified timeline export (DESIGN.md §15): single-seed replays with
  // --trace record the data-plane flight recorder AND the causal tracer
  // (churn spans, installs, time-to-effect closures) into one file.
  elmo::obs::Tracer tracer;
  const bool trace_on = !opt.trace.empty() && seeds == 1;
  if (trace_on) elmo::obs::set_global_tracer(&tracer);

  std::size_t sends = 0;
  for (std::size_t i = 0; i < seeds; ++i) {
    const std::uint64_t seed = base + i;
    const auto scenario = make_scenario(seed, opt);
    RunObservability observability{registry, trace_on ? &recorder : nullptr};
    if (trace_on) observability.tracer = &tracer;
    elmo::verify::RunOptions run_options;
    run_options.walk_threads = opt.walk_threads;
    run_options.delta_installs = opt.delta_installs;
    const auto report = elmo::verify::run_scenario(
        scenario, Mutation::kNone,
        (registry != nullptr || trace_on) ? &observability : nullptr,
        run_options);
    if (!report.ok) {
      report_failure(scenario, report, opt);
      return 1;
    }
    sends += report.sends_checked;
    if (opt.verbose) {
      std::printf("seed=%llu ok (%zu events, %zu sends)\n",
                  static_cast<unsigned long long>(seed), report.events_run,
                  report.sends_checked);
    }
  }
  std::printf("fuzz_pipeline: %zu seed(s) ok, %zu sends diffed against the "
              "delivery oracle\n",
              seeds, sends);
  if (registry != nullptr) {
    elmo::obs::write_metrics(opt.metrics, registry->snapshot());
  }
  if (trace_on) {
    elmo::obs::set_global_tracer(nullptr);
    elmo::sim::write_unified_trace(opt.trace, tracer, recorder);
  }
  return 0;
}

int run_mutations(std::uint64_t base, std::size_t max_scans,
                  const Options& opt) {
  const bool verbose = opt.verbose;
  int failures = 0;
  for (const auto mutation : elmo::verify::kAllMutations) {
    bool caught = false;
    std::uint64_t caught_seed = 0;
    std::size_t applied_runs = 0;
    for (std::size_t i = 0; i < max_scans && !caught; ++i) {
      const std::uint64_t seed = base + i;
      const auto scenario = make_scenario(seed, opt);
      const auto report = elmo::verify::run_scenario(scenario, mutation);
      if (report.applied) ++applied_runs;
      if (report.applied && !report.ok) {
        caught = true;
        caught_seed = seed;
        if (verbose) {
          std::printf("  %s caught at seed=%llu: %s\n",
                      elmo::verify::to_string(mutation),
                      static_cast<unsigned long long>(seed),
                      report.failure.c_str());
        }
      }
    }
    if (caught) {
      std::printf("mutation %-20s CAUGHT (seed=%llu, applied in %zu runs)\n",
                  elmo::verify::to_string(mutation),
                  static_cast<unsigned long long>(caught_seed), applied_runs);
    } else {
      std::printf("mutation %-20s SURVIVED %zu seeds (applied in %zu runs) — "
                  "the harness has a blind spot\n",
                  elmo::verify::to_string(mutation), max_scans, applied_runs);
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const elmo::util::Flags flags{argc, argv};
  const auto base =
      static_cast<std::uint64_t>(flags.get_int("BASE_SEED", 1));
  const auto seeds = static_cast<std::size_t>(flags.get_int("SEEDS", 50));
  const auto single = flags.get_int("SEED", -1);
  const bool mutate = flags.get_bool("MUTATE", false);

  Options opt;
  opt.do_shrink = flags.get_bool("SHRINK", true);
  opt.verbose = flags.get_bool("VERBOSE", false);
  opt.metrics = flags.get_string("METRICS", "");
  opt.trace = flags.get_string("TRACE", "");
  opt.artifacts = flags.get_string("ARTIFACTS", ".");
  opt.walk_threads =
      static_cast<std::size_t>(flags.get_int("WALK_THREADS", 0));
  opt.churn_events =
      static_cast<std::size_t>(flags.get_int("CHURN_EVENTS", 0));
  opt.delta_installs = flags.get_bool("DELTA", false) || opt.churn_events > 0;
  if (const auto name = flags.get_string("ENCODER", ""); !name.empty()) {
    opt.encoder = elmo::parse_encoder_kind(name);
  }

  if (single >= 0) {
    opt.verbose = true;
    return run_plain(static_cast<std::uint64_t>(single), 1, opt);
  }
  if (mutate) {
    return run_mutations(base, seeds, opt);
  }
  return run_plain(base, seeds, opt);
}
