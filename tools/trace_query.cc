// Causal trace explorer: "where did my join go?" (DESIGN.md §15).
//
// Replays one fuzz scenario's membership into a controller + fabric, then
// streams appended churn events through a traced stream::ControlPlane and
// renders the resulting causal traces as annotated span trees: each churn
// event's root span with its re-encode / delta-diff children, the flush and
// per-switch install spans it flowed into, the data-plane instant that
// closed its time-to-effect watch, and — for joins — the per-hop path the
// first delivered packet actually took, joined from the ProvenanceLog.
//
// Flags (KEY=VALUE, --key=value, or ELMO_<KEY> env):
//   --seed=N            scenario seed (default 1)
//   --churn_events=N    churn events appended to the scenario (default 24)
//   --flush_threshold=N plane batching (default 1 = install immediately)
//   --trace=N           only render trace N
//   --group=A           only render traces touching group address A (decimal)
//   --kind=K            only render traces whose root span name contains K
//                       (e.g. join, leave, host_fail, flush)
//   --max_traces=N      cap rendered traces (default 16, 0 = unlimited)
//   --json=1            machine-readable summary instead of trees (CI)
//   --trace_out=PATH    also write the merged chrome://tracing timeline
//
// Example: tools/trace_query --seed=3 --kind=join
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "elmo/controller.h"
#include "elmo/stream.h"
#include "obs/provenance.h"
#include "obs/trace.h"
#include "sim/fabric.h"
#include "sim/flight_recorder.h"
#include "topology/clos.h"
#include "util/flags.h"
#include "util/stats.h"
#include "verify/scenario.h"

namespace {

using namespace elmo;

// Salt under which the continuous-churn fuzz campaign extends scenarios;
// reusing it means a trace_query run shows exactly the events a
// `fuzz_pipeline --churn_events=N` run with the same seed would install.
constexpr std::uint64_t kChurnSalt = 0xc4;

struct TraceView {
  std::uint64_t id = 0;
  std::vector<const obs::SpanRecord*> records;  // chronological
  const obs::SpanRecord* root = nullptr;        // first parentless span
};

bool has_group_attr(const obs::SpanRecord& rec, double group) {
  for (std::uint8_t i = 0; i < rec.nattrs; ++i) {
    if (std::string_view{rec.attrs[i].key} == "group" &&
        rec.attrs[i].value == group) {
      return true;
    }
  }
  return false;
}

void append_attrs(std::string& out, const obs::SpanRecord& rec) {
  if (rec.nattrs == 0) return;
  out += " {";
  for (std::uint8_t i = 0; i < rec.nattrs; ++i) {
    if (i != 0) out += ", ";
    out += rec.attrs[i].key;
    out += "=";
    char buf[32];
    const double v = rec.attrs[i].value;
    if (v == static_cast<double>(static_cast<long long>(v))) {
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    } else {
      std::snprintf(buf, sizeof(buf), "%g", v);
    }
    out += buf;
  }
  out += "}";
}

// One rendered line per span/instant, indented by tree depth.
void render_record(const obs::SpanRecord& rec, int depth, std::string& out) {
  char buf[160];
  out.append(static_cast<std::size_t>(2 + 2 * depth), ' ');
  if (rec.kind == obs::SpanRecord::Kind::kInstant) {
    std::snprintf(buf, sizeof(buf), "* %-22s [%s] @%.3fus", rec.name,
                  to_string(rec.lane), rec.ts_us);
  } else if (rec.dur_us < 0) {
    std::snprintf(buf, sizeof(buf), "- %-22s [%s] @%.3fus (still open)",
                  rec.name, to_string(rec.lane), rec.ts_us);
  } else {
    std::snprintf(buf, sizeof(buf), "- %-22s [%s] @%.3fus +%.3fus", rec.name,
                  to_string(rec.lane), rec.ts_us, rec.dur_us);
  }
  out += buf;
  append_attrs(out, rec);
  if (rec.orphan) out += "  (orphan: parent dropped)";
  out += "\n";
}

void render_subtree(
    const obs::SpanRecord& rec,
    const std::multimap<std::uint64_t, const obs::SpanRecord*>& children,
    int depth, std::string& out) {
  render_record(rec, depth, out);
  const auto [lo, hi] = children.equal_range(rec.span_id);
  for (auto it = lo; it != hi; ++it) {
    render_subtree(*it->second, children, depth + 1, out);
  }
}

// The root-to-delivery hop chain of `trace`, ending at hop `leaf`:
// "host3 -> leaf0[p-rule] -> spine2[upstream] -> leaf4[s-rule] -> host17".
std::string hop_path(const obs::SendTrace& trace, std::size_t leaf) {
  std::vector<std::size_t> chain;
  for (auto i = leaf; i != obs::kNoProvParent; i = trace.hops[i].parent) {
    chain.push_back(i);
  }
  std::reverse(chain.begin(), chain.end());
  std::string out;
  for (const auto i : chain) {
    const auto& hop = trace.hops[i];
    if (!out.empty()) out += " -> ";
    out += to_string(hop.layer) + std::to_string(hop.node);
    if (hop.decision.rule != obs::RuleClass::kNone &&
        hop.decision.rule != obs::RuleClass::kSource) {
      out += std::string{"["} + to_string(hop.decision.rule) + "]";
    }
  }
  return out;
}

// First provenance trace that delivered `group` to `host` — the send that
// closed (or would have closed) the join's time-to-effect watch.
const obs::SendTrace* find_delivery(const obs::ProvenanceLog& prov,
                                    std::uint32_t group, std::uint32_t host,
                                    std::size_t& leaf_out) {
  for (const auto& send : prov.sends()) {
    if (send.group != group) continue;
    for (std::size_t i = 0; i < send.hops.size(); ++i) {
      const auto& hop = send.hops[i];
      if (hop.layer == topo::Layer::kHost && hop.node == host &&
          hop.decision.rule == obs::RuleClass::kHostDeliver) {
        leaf_out = i;
        return &send;
      }
    }
  }
  return nullptr;
}

void append_json_tte(std::string& out, const char* key,
                     const std::vector<double>& us, std::size_t stale_seen,
                     bool leave) {
  char buf[256];
  const double p50 = us.empty() ? 0 : util::percentile(us, 50);
  const double p99 = us.empty() ? 0 : util::percentile(us, 99);
  const double mx = us.empty() ? 0 : *std::max_element(us.begin(), us.end());
  std::snprintf(buf, sizeof(buf),
                "    \"%s\": {\"closed\": %zu, \"p50_us\": %.3f, "
                "\"p99_us\": %.3f, \"max_us\": %.3f",
                key, us.size(), p50, p99, mx);
  out += buf;
  if (leave) {
    std::snprintf(buf, sizeof(buf), ", \"stale_seen\": %zu", stale_seen);
    out += buf;
  }
  out += "}";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags{argc, argv};
  const auto seed = static_cast<std::uint64_t>(flags.get_int("SEED", 1));
  const auto churn =
      static_cast<std::size_t>(flags.get_int("CHURN_EVENTS", 24));
  const auto flush_threshold =
      static_cast<std::size_t>(flags.get_int("FLUSH_THRESHOLD", 1));
  const auto want_trace =
      static_cast<std::uint64_t>(flags.get_int("TRACE", 0));
  const auto want_group =
      static_cast<std::uint32_t>(flags.get_int("GROUP", 0));
  const auto want_kind = flags.get_string("KIND", "");
  const auto max_traces =
      static_cast<std::size_t>(flags.get_int("MAX_TRACES", 16));
  const bool json = flags.get_bool("JSON", false);
  const auto trace_out = flags.get_string("TRACE_OUT", "");

  auto scenario = verify::generate_scenario(seed);
  const auto base_events = scenario.events.size();
  verify::append_churn_events(scenario, churn, kChurnSalt);

  const topo::ClosTopology topo{scenario.params};
  Controller controller{topo, scenario.config};
  sim::Fabric fabric{topo};
  auto legacy = scenario.legacy_leaves;
  if (!legacy.empty()) {
    legacy.resize(topo.num_leaves(), false);
    controller.set_legacy_leaves(legacy);
    for (topo::LeafId l = 0; l < topo.num_leaves(); ++l) {
      if (legacy[l]) fabric.leaf(l).set_legacy(true);
    }
  }

  // Membership-only replay of the base script (failures and sends are not
  // part of the state the churn extension was validated against).
  std::vector<GroupId> ids;
  std::vector<std::vector<Member>> membership;
  for (const auto& g : scenario.groups) {
    ids.push_back(
        controller.create_group(g.tenant, std::span<const Member>{g.members}));
    membership.push_back(g.members);
  }
  const auto forget = [&](std::size_t gi, topo::HostId host, std::uint32_t vm) {
    auto& members = membership[gi];
    members.erase(std::remove_if(members.begin(), members.end(),
                                 [&](const Member& m) {
                                   return m.host == host && m.vm == vm;
                                 }),
                  members.end());
  };
  for (std::size_t i = 0; i < base_events; ++i) {
    const auto& ev = scenario.events[i];
    switch (ev.kind) {
      case verify::EventKind::kJoin:
        controller.join(ids.at(ev.group_index), ev.member);
        membership[ev.group_index].push_back(ev.member);
        break;
      case verify::EventKind::kLeave:
        controller.leave(ids.at(ev.group_index), ev.member.host, ev.member.vm);
        forget(ev.group_index, ev.member.host, ev.member.vm);
        break;
      case verify::EventKind::kHostFail:
        for (std::size_t gi = 0; gi < ids.size(); ++gi) {
          const auto members = membership[gi];  // copy: leave mutates
          for (const auto& m : members) {
            if (m.host != ev.member.host) continue;
            controller.leave(ids.at(gi), m.host, m.vm);
            forget(gi, m.host, m.vm);
          }
        }
        break;
      default:
        break;
    }
  }
  for (const auto id : ids) fabric.install_group(controller, id);

  // Live run: every appended event flows through the traced control plane;
  // sends walk the fabric (closing time-to-effect watches) under a flight
  // recorder and a provenance log for the data-plane half of the story.
  obs::Tracer tracer;
  sim::FlightRecorder recorder;
  obs::ProvenanceLog prov;
  fabric.set_recorder(&recorder);
  fabric.set_provenance(&prov);
  stream::ControlPlane plane{controller, fabric,
                             stream::ControlPlaneOptions{flush_threshold}};
  for (const auto id : ids) plane.track_group(id);
  plane.set_tracer(&tracer);
  obs::set_global_tracer(&tracer);

  std::size_t sends = 0;
  for (std::size_t i = base_events; i < scenario.events.size(); ++i) {
    const auto& ev = scenario.events[i];
    switch (ev.kind) {
      case verify::EventKind::kJoin:
        plane.join(ids.at(ev.group_index), ev.member);
        break;
      case verify::EventKind::kLeave:
        plane.leave(ids.at(ev.group_index), ev.member.host, ev.member.vm);
        break;
      case verify::EventKind::kHostFail:
        plane.host_fail(ev.member.host);
        break;
      case verify::EventKind::kSend: {
        const auto& g = controller.group(ids.at(ev.group_index));
        (void)fabric.send(ev.sender, g.address, std::size_t{64});
        ++sends;
        break;
      }
      default:
        break;
    }
  }
  plane.flush();
  obs::set_global_tracer(nullptr);

  if (!trace_out.empty()) {
    if (!sim::write_unified_trace(trace_out, tracer, recorder)) {
      std::fprintf(stderr, "trace_query: cannot write %s\n",
                   trace_out.c_str());
      return 2;
    }
  }

  // --- join the three stores -----------------------------------------------
  const auto records = tracer.snapshot();
  const auto stats = tracer.stats();
  const auto& tte = fabric.tte_records();

  std::map<std::uint64_t, TraceView> traces;
  std::map<std::uint64_t, const obs::SpanRecord*> by_span;
  std::multimap<std::uint64_t, const obs::SpanRecord*> children;
  std::vector<const obs::SpanRecord*> flows;
  for (const auto& rec : records) {
    auto& view = traces[rec.trace_id];
    view.id = rec.trace_id;
    view.records.push_back(&rec);
    if (rec.kind == obs::SpanRecord::Kind::kFlow) {
      flows.push_back(&rec);
      continue;
    }
    by_span.emplace(rec.span_id, &rec);
    if (rec.parent_span != 0) {
      children.emplace(rec.parent_span, &rec);
    } else if (view.root == nullptr &&
               rec.kind == obs::SpanRecord::Kind::kSpan) {
      view.root = &rec;
    }
  }

  std::map<std::uint64_t, std::vector<const obs::TteRecord*>> tte_by_trace;
  std::vector<double> join_us, leave_us;
  std::size_t stale_seen = 0;
  for (const auto& rec : tte) {
    tte_by_trace[rec.trace_id].push_back(&rec);
    if (rec.leave) {
      leave_us.push_back(rec.tte_seconds * 1e6);
      if (rec.stale_seen) ++stale_seen;
    } else {
      join_us.push_back(rec.tte_seconds * 1e6);
    }
  }

  if (json) {
    std::string out = "{\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"tool\": \"trace_query\",\n  \"seed\": %" PRIu64
                  ",\n  \"churn_events\": %zu,\n  \"sends\": %zu,\n",
                  seed, churn, sends);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"stats\": {\"spans\": %" PRIu64 ", \"instants\": %" PRIu64
                  ", \"flows\": %" PRIu64 ", \"dropped\": %" PRIu64
                  ", \"orphans\": %" PRIu64 ", \"open_spans\": %" PRIu64
                  "},\n",
                  stats.spans, stats.instants, stats.flows, stats.dropped,
                  stats.orphans, stats.open_spans);
    out += buf;
    std::snprintf(buf, sizeof(buf), "  \"traces\": %zu,\n  \"tte\": {\n",
                  traces.size());
    out += buf;
    append_json_tte(out, "join", join_us, 0, false);
    out += ",\n";
    append_json_tte(out, "leave", leave_us, stale_seen, true);
    out += "\n  },\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"summary\": {\"join_tte_closed\": %zu, "
                  "\"leave_tte_closed\": %zu}\n}\n",
                  join_us.size(), leave_us.size());
    out += buf;
    std::fputs(out.c_str(), stdout);
    return 0;
  }

  std::printf("trace_query: seed=%" PRIu64
              " churn_events=%zu sends=%zu traces=%zu spans=%" PRIu64
              " flows=%" PRIu64 " dropped=%" PRIu64 " orphans=%" PRIu64 "\n",
              seed, churn, sends, traces.size(), stats.spans, stats.flows,
              stats.dropped, stats.orphans);
  if (!join_us.empty()) {
    std::printf("tte join:  %zu closed, p50=%.1fus p99=%.1fus\n",
                join_us.size(), util::percentile(join_us, 50),
                util::percentile(join_us, 99));
  }
  if (!leave_us.empty()) {
    std::printf("tte leave: %zu closed (%zu saw stale copies), "
                "p50=%.1fus p99=%.1fus\n",
                leave_us.size(), stale_seen, util::percentile(leave_us, 50),
                util::percentile(leave_us, 99));
  }
  std::printf("\n");

  std::size_t rendered = 0, suppressed = 0;
  for (const auto& [id, view] : traces) {
    if (want_trace != 0 && id != want_trace) continue;
    if (!want_kind.empty()) {
      const std::string root_name = view.root != nullptr ? view.root->name : "";
      if (root_name.find(want_kind) == std::string::npos) continue;
    }
    if (want_group != 0) {
      const double g = static_cast<double>(want_group);
      const bool touches =
          std::any_of(view.records.begin(), view.records.end(),
                      [&](const obs::SpanRecord* r) {
                        return has_group_attr(*r, g);
                      });
      if (!touches) continue;
    }
    if (max_traces != 0 && rendered >= max_traces) {
      ++suppressed;
      continue;
    }
    ++rendered;

    std::string out;
    char head[64];
    std::snprintf(head, sizeof(head), "trace %" PRIu64 "\n", id);
    out += head;
    for (const auto* rec : view.records) {
      if (rec->kind == obs::SpanRecord::Kind::kFlow) continue;
      // Roots only; children render inside their parent's subtree. Orphans
      // are parentless by construction, so they surface here too.
      if (rec->parent_span != 0) continue;
      render_subtree(*rec, children, 0, out);
    }
    // Causal edges touching this trace, both directions.
    for (const auto* f : flows) {
      const auto from = by_span.find(f->link_span);
      const auto to = by_span.find(f->parent_span);
      const bool from_here =
          from != by_span.end() && from->second->trace_id == id;
      const bool to_here = f->trace_id == id;
      if (!from_here && !to_here) continue;
      char line[192];
      if (from_here && !to_here) {
        std::snprintf(line, sizeof(line),
                      "  ~ flow: %s -> %s (trace %" PRIu64 ")\n",
                      from->second->name,
                      to != by_span.end() ? to->second->name : "?",
                      f->trace_id);
      } else if (to_here && !from_here) {
        std::snprintf(line, sizeof(line),
                      "  ~ flow: %s <- %s (trace %" PRIu64 ")\n",
                      to != by_span.end() ? to->second->name : "?",
                      from != by_span.end() ? from->second->name : "?",
                      from != by_span.end() ? from->second->trace_id : 0);
      } else {
        std::snprintf(line, sizeof(line), "  ~ flow: %s -> %s\n",
                      from->second->name,
                      to != by_span.end() ? to->second->name : "?");
      }
      out += line;
    }
    // Time-to-effect verdicts, with the delivering packet's hop path for
    // joins (the ProvenanceLog's half of the causal chain).
    if (const auto it = tte_by_trace.find(id); it != tte_by_trace.end()) {
      for (const auto* rec : it->second) {
        char line[128];
        if (rec->leave) {
          std::snprintf(line, sizeof(line),
                        "  ! tte: leave of host%u closed, last stale copy "
                        "%+.1fus%s\n",
                        rec->host, rec->tte_seconds * 1e6,
                        rec->stale_seen ? "" : " (no stale delivery)");
          out += line;
        } else {
          std::snprintf(line, sizeof(line),
                        "  ! tte: join of host%u -> first delivery after "
                        "%.1fus\n",
                        rec->host, rec->tte_seconds * 1e6);
          out += line;
          std::size_t leaf = 0;
          if (const auto* send = find_delivery(prov, rec->group, rec->host,
                                               leaf)) {
            out += "    via " + hop_path(*send, leaf) + "\n";
          }
        }
      }
    }
    out += "\n";
    std::fputs(out.c_str(), stdout);
  }
  if (suppressed != 0) {
    std::printf("(%zu more traces suppressed; --max_traces=0 for all)\n",
                suppressed);
  }
  if (rendered == 0) {
    std::printf("no traces matched the filter\n");
  }
  return 0;
}
