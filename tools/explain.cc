// Per-packet decision provenance explorer ("why did this host get a copy?").
//
// Replays one fuzz scenario through the differential runner with provenance
// capture on, then renders the annotated decision tree of the requested
// send(s): per hop, the rule class that matched (p-rule / upstream / s-rule /
// default), the bitmap it applied, the header bytes it popped, and the
// egress set — with every host leaf flagged intended, redundant (attributed
// to the default p-rule, a shared p-rule, or a shared s-rule), or missing,
// from the delivery-oracle join (DESIGN.md §10).
//
// Each rendered send ends with an attribution line decomposing the excess
// traffic by cause; the tool cross-checks those totals against the analytic
// evaluator's overhead accounting (members reached / duplicate / spurious)
// and exits non-zero on any mismatch.
//
// Flags (KEY=VALUE, --key=value, or ELMO_<KEY> env):
//   --seed=N        scenario seed to replay (default 1)
//   --group=G       only sends of this group index (default: all groups)
//   --send=K        only the K-th matching send (0-based; default: all)
//   --encoder=NAME  replay under this TreeEncoder (elmo / bert / p3fa;
//                   default: the kind the scenario generator drew)
//
// Example: tools/explain --seed=7 --group=0 --encoder=bert
#include <cstdio>
#include <string>
#include <vector>

#include "elmo/tree_encoder.h"
#include "util/flags.h"
#include "verify/differ.h"
#include "verify/scenario.h"

int main(int argc, char** argv) {
  const elmo::util::Flags flags{argc, argv};
  const auto seed = static_cast<std::uint64_t>(flags.get_int("SEED", 1));
  const auto group = flags.get_int("GROUP", -1);
  const auto send = flags.get_int("SEND", -1);

  auto scenario = elmo::verify::generate_scenario(seed);
  if (const auto name = flags.get_string("ENCODER", ""); !name.empty()) {
    scenario.config.encoder = elmo::parse_encoder_kind(name);
  }
  std::vector<elmo::verify::SendCapture> captures;
  elmo::verify::RunObservability observability;
  observability.captures = &captures;
  const auto report = elmo::verify::run_scenario(
      scenario, elmo::verify::Mutation::kNone, &observability);

  std::printf(
      "seed=%llu encoder=%s: %zu group(s), %zu event(s), %zu send(s) "
      "captured\n",
      static_cast<unsigned long long>(seed),
      elmo::to_string(scenario.config.encoder), scenario.groups.size(),
      scenario.events.size(), captures.size());
  if (!report.ok) {
    std::printf("NOTE: scenario diverged: %s\n", report.failure.c_str());
  }

  std::size_t shown = 0;
  std::size_t mismatches = 0;
  std::size_t match_index = 0;
  for (const auto& capture : captures) {
    if (group >= 0 && capture.group_index != static_cast<std::size_t>(group)) {
      continue;
    }
    const auto index = match_index++;
    if (send >= 0 && index != static_cast<std::size_t>(send)) continue;

    std::printf("\n--- send #%zu (event #%zu, group %zu, from host %u) ---\n",
                index, capture.event_index, capture.group_index,
                capture.sender);
    std::fputs(capture.explanation.render().c_str(), stdout);

    const auto& b = capture.explanation.breakdown;
    const auto evaluator_excess =
        capture.evaluator_duplicates + capture.evaluator_spurious;
    if (b.intended == capture.evaluator_reached &&
        b.total_redundant() == evaluator_excess) {
      std::printf("evaluator cross-check: OK (%zu reached, %zu excess)\n",
                  capture.evaluator_reached, evaluator_excess);
    } else {
      std::printf("evaluator cross-check: MISMATCH (provenance %zu/%zu, "
                  "evaluator %zu/%zu)\n",
                  b.intended, b.total_redundant(), capture.evaluator_reached,
                  evaluator_excess);
      ++mismatches;
    }
    ++shown;
  }

  if (shown == 0) {
    std::printf("no captured send matches group=%lld send=%lld\n",
                static_cast<long long>(group), static_cast<long long>(send));
    return 1;
  }
  return mismatches == 0 ? 0 : 1;
}
