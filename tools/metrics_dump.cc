// Pretty-printer for the Prometheus-style metrics exposition the benches and
// tools write via --metrics=<path> (DESIGN.md §9).
//
//   tools/metrics_dump <file>          # or "-" / no argument for stdin
//   tools/metrics_dump --diff <a> <b>  # per-series deltas between two runs
//
// Single-file mode: counters get a right-aligned rate column (value /
// elmo_uptime_seconds, K/M/G suffixes); histograms are folded from their
// _sum/_count series into one row with observation count, rate, and mean.
//
// Diff mode compares two expositions of the same workload (before/after a
// change, two bench configurations): per series it prints both values, the
// delta, and the ratio of *rates* — each side normalized by its own uptime,
// so a faster run that did the same work shows ~1.0x where a raw value
// ratio would mislead.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "util/table.h"

namespace {

struct Series {
  std::string type;  // counter | gauge | histogram | untyped
  double value = 0;
  bool seen = false;
};

struct Snapshot {
  // name -> series; histogram _sum/_count series are folded under the base
  // name. Insertion-ordered output would need a vector; the exposition is
  // already name-sorted, so a map keeps that order.
  std::map<std::string, Series> series;
  std::map<std::string, std::pair<double, double>> hists;  // sum, count
  double uptime = 0;
};

Snapshot parse(std::istream& in) {
  Snapshot snap;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ls{line};
      std::string hash, kind, name, type;
      ls >> hash >> kind >> name >> type;
      if (kind == "TYPE") snap.series[name].type = type;
      continue;
    }
    const auto space = line.find_last_of(' ');
    if (space == std::string::npos) continue;
    std::string name = line.substr(0, space);
    const double value = std::strtod(line.c_str() + space + 1, nullptr);
    if (const auto brace = name.find('{'); brace != std::string::npos) {
      name.resize(brace);  // histogram buckets fold under the series name
    }
    if (name.ends_with("_bucket")) continue;
    if (name.ends_with("_sum")) {
      snap.hists[name.substr(0, name.size() - 4)].first = value;
      continue;
    }
    if (name.ends_with("_count")) {
      const auto base = name.substr(0, name.size() - 6);
      if (snap.series.contains(base) &&
          snap.series[base].type == "histogram") {
        snap.hists[base].second = value;
        continue;
      }
    }
    auto& s = snap.series[name];
    s.value = value;
    s.seen = true;
  }
  if (snap.series.contains("elmo_uptime_seconds")) {
    snap.uptime = snap.series["elmo_uptime_seconds"].value;
  }
  return snap;
}

bool load(const std::string& path, Snapshot& snap) {
  if (path == "-") {
    snap = parse(std::cin);
    return true;
  }
  std::ifstream file{path};
  if (!file) {
    std::fprintf(stderr, "metrics_dump: cannot open %s\n", path.c_str());
    return false;
  }
  snap = parse(file);
  return true;
}

std::string fmt_seconds(double s) {
  char buf[32];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.1fus", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fs", s);
  }
  return buf;
}

int dump_one(const std::string& path) {
  Snapshot snap;
  if (!load(path, snap)) return 1;

  using elmo::util::TextTable;
  TextTable table{{"metric", "type", "value", "rate", "notes"}};
  table.set_align(2, TextTable::Align::kRight);
  table.set_align(3, TextTable::Align::kRight);
  for (const auto& [name, s] : snap.series) {
    if (s.type == "histogram") {
      const auto it = snap.hists.find(name);
      if (it == snap.hists.end()) continue;
      const auto [sum, count] = it->second;
      table.add_row(
          {name, "histogram",
           TextTable::fmt_count(static_cast<std::uint64_t>(count)),
           snap.uptime > 0 ? TextTable::fmt_rate(count / snap.uptime) : "",
           count > 0 ? "mean " + fmt_seconds(sum / count) : ""});
      continue;
    }
    if (!s.seen) continue;
    const bool is_counter = s.type == "counter";
    table.add_row(
        {name, s.type.empty() ? "untyped" : s.type,
         is_counter ? TextTable::fmt_count(static_cast<std::uint64_t>(s.value))
                    : TextTable::fmt(s.value),
         is_counter && snap.uptime > 0
             ? TextTable::fmt_rate(s.value / snap.uptime)
             : "",
         ""});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

// One comparable scalar per series: counter/gauge value, histogram count.
bool scalar_of(const Snapshot& snap, const std::string& name,
               std::string& type, double& value) {
  const auto it = snap.series.find(name);
  if (it == snap.series.end()) return false;
  if (it->second.type == "histogram") {
    const auto h = snap.hists.find(name);
    if (h == snap.hists.end()) return false;
    type = "histogram";
    value = h->second.second;
    return true;
  }
  if (!it->second.seen) return false;
  type = it->second.type.empty() ? "untyped" : it->second.type;
  value = it->second.value;
  return true;
}

std::string fmt_value(const std::string& type, double value) {
  using elmo::util::TextTable;
  if (type == "counter" || type == "histogram") {
    return TextTable::fmt_count(static_cast<std::uint64_t>(value));
  }
  return TextTable::fmt(value);
}

int dump_diff(const std::string& path_a, const std::string& path_b) {
  Snapshot a, b;
  if (!load(path_a, a) || !load(path_b, b)) return 1;

  std::set<std::string> names;
  for (const auto& [name, s] : a.series) names.insert(name);
  for (const auto& [name, s] : b.series) names.insert(name);

  using elmo::util::TextTable;
  TextTable table{{"metric", "type", "a", "b", "delta", "rate"}};
  table.set_align(2, TextTable::Align::kRight);
  table.set_align(3, TextTable::Align::kRight);
  table.set_align(4, TextTable::Align::kRight);
  table.set_align(5, TextTable::Align::kRight);

  for (const auto& name : names) {
    std::string type_a, type_b;
    double va = 0, vb = 0;
    const bool in_a = scalar_of(a, name, type_a, va);
    const bool in_b = scalar_of(b, name, type_b, vb);
    if (!in_a && !in_b) continue;
    const std::string type = in_b ? type_b : type_a;

    std::string delta;
    if (in_a && in_b) {
      const double d = vb - va;
      delta = (d >= 0 ? "+" : "-") + fmt_value(type, d >= 0 ? d : -d);
    }

    // Rate ratio: normalize each side by its own uptime so runs of unequal
    // length compare work-per-second, not raw totals. Only meaningful for
    // monotonic series (counters, histogram counts).
    std::string ratio;
    const bool monotonic = type == "counter" || type == "histogram";
    if (in_a && in_b && monotonic && a.uptime > 0 && b.uptime > 0 && va > 0) {
      ratio = TextTable::fmt((vb / b.uptime) / (va / a.uptime)) + "x";
    }

    table.add_row({name, type, in_a ? fmt_value(type_a, va) : "-",
                   in_b ? fmt_value(type_b, vb) : "-", delta, ratio});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string{argv[1]} == "--diff") {
    if (argc != 4) {
      std::fprintf(stderr, "usage: metrics_dump --diff <a> <b>\n");
      return 1;
    }
    return dump_diff(argv[2], argv[3]);
  }
  return dump_one(argc > 1 ? argv[1] : "-");
}
