// Pretty-printer for the Prometheus-style metrics exposition the benches and
// tools write via --metrics=<path> (DESIGN.md §9).
//
//   tools/metrics_dump <file>            # or "-" / no argument for stdin
//   tools/metrics_dump --diff <a> <b>    # per-series deltas between two runs
//   tools/metrics_dump --watch=<secs> <file>   # repeated scrapes, live rates
//
// Single-file mode: counters get a right-aligned rate column (value /
// elmo_uptime_seconds, K/M/G suffixes); histograms are folded from their
// _sum/_count series into one row with observation count, rate, and mean.
//
// Diff mode compares two expositions of the same workload (before/after a
// change, two bench configurations): per series it prints both values, the
// delta, and the ratio of *rates* — each side normalized by its own uptime,
// so a faster run that did the same work shows ~1.0x where a raw value
// ratio would mislead.
//
// Watch mode (DESIGN.md §14) re-reads the file every --watch seconds,
// feeds each scrape into an obs::TimeSeriesStore window, and renders the
// per-series value, per-scrape delta, and wall-clock rate computed from the
// store's sample timestamps — a poor man's `top` for a bench writing
// --metrics periodically. --iterations=N bounds the loop (0 = forever);
// CI smokes it with --watch=0 --iterations=2. Both the Prometheus text and
// the JSON exposition (a `.json` --metrics path) are accepted.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/timeseries.h"
#include "util/flags.h"

#include "util/table.h"

namespace {

struct Series {
  std::string type;  // counter | gauge | histogram | untyped
  double value = 0;
  bool seen = false;
};

struct Snapshot {
  // name -> series; histogram _sum/_count series are folded under the base
  // name. Insertion-ordered output would need a vector; the exposition is
  // already name-sorted, so a map keeps that order.
  std::map<std::string, Series> series;
  std::map<std::string, std::pair<double, double>> hists;  // sum, count
  double uptime = 0;
};

Snapshot parse(std::istream& in) {
  Snapshot snap;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ls{line};
      std::string hash, kind, name, type;
      ls >> hash >> kind >> name >> type;
      if (kind == "TYPE") snap.series[name].type = type;
      continue;
    }
    const auto space = line.find_last_of(' ');
    if (space == std::string::npos) continue;
    std::string name = line.substr(0, space);
    const double value = std::strtod(line.c_str() + space + 1, nullptr);
    if (const auto brace = name.find('{'); brace != std::string::npos) {
      name.resize(brace);  // histogram buckets fold under the series name
    }
    if (name.ends_with("_bucket")) continue;
    if (name.ends_with("_sum")) {
      snap.hists[name.substr(0, name.size() - 4)].first = value;
      continue;
    }
    if (name.ends_with("_count")) {
      const auto base = name.substr(0, name.size() - 6);
      if (snap.series.contains(base) &&
          snap.series[base].type == "histogram") {
        snap.hists[base].second = value;
        continue;
      }
    }
    auto& s = snap.series[name];
    s.value = value;
    s.seen = true;
  }
  if (snap.series.contains("elmo_uptime_seconds")) {
    snap.uptime = snap.series["elmo_uptime_seconds"].value;
  }
  return snap;
}

// Parses the registry's JSON exposition (obs::Snapshot::json — what a
// `.json` --metrics path writes). The format is machine-generated with a
// fixed key order, so targeted scans beat a general JSON parser: each metric
// object leads with `{"name": "..."` and, for histograms, the top-level
// `"count"` precedes the `"buckets"` array whose per-bucket counts would
// otherwise shadow it.
Snapshot parse_json(const std::string& text) {
  Snapshot snap;
  auto number_after = [&](const std::string& obj, const char* key,
                          double& out) {
    const std::string needle = std::string{"\""} + key + "\": ";
    const auto pos = obj.find(needle);
    if (pos == std::string::npos) return false;
    out = std::strtod(obj.c_str() + pos + needle.size(), nullptr);
    return true;
  };
  auto string_after = [&](const std::string& obj, const char* key,
                          std::string& out) {
    const std::string needle = std::string{"\""} + key + "\": \"";
    const auto pos = obj.find(needle);
    if (pos == std::string::npos) return false;
    const auto end = obj.find('"', pos + needle.size());
    if (end == std::string::npos) return false;
    out = obj.substr(pos + needle.size(), end - pos - needle.size());
    return true;
  };
  number_after(text, "uptime_seconds", snap.uptime);
  snap.series["elmo_uptime_seconds"] = Series{"gauge", snap.uptime, true};

  const std::string open = "{\"name\": \"";
  for (auto pos = text.find(open); pos != std::string::npos;) {
    const auto next = text.find(open, pos + open.size());
    const std::string obj = text.substr(
        pos, next == std::string::npos ? std::string::npos : next - pos);
    pos = next;
    std::string name, kind;
    if (!string_after(obj, "name", name) || !string_after(obj, "kind", kind)) {
      continue;
    }
    auto& s = snap.series[name];
    s.type = kind;
    if (kind == "histogram") {
      double sum = 0, count = 0;
      number_after(obj, "sum", sum);
      number_after(obj, "count", count);
      snap.hists[name] = {sum, count};
      continue;
    }
    if (double value = 0; number_after(obj, "value", value)) {
      s.value = value;
      s.seen = true;
    }
  }
  return snap;
}

Snapshot parse_any(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const auto first = text.find_first_not_of(" \t\r\n");
  if (first != std::string::npos && text[first] == '{') {
    return parse_json(text);
  }
  std::istringstream stream{text};
  return parse(stream);
}

bool load(const std::string& path, Snapshot& snap) {
  if (path == "-") {
    snap = parse_any(std::cin);
    return true;
  }
  std::ifstream file{path};
  if (!file) {
    std::fprintf(stderr, "metrics_dump: cannot open %s\n", path.c_str());
    return false;
  }
  snap = parse_any(file);
  return true;
}

std::string fmt_seconds(double s) {
  char buf[32];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.1fus", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fs", s);
  }
  return buf;
}

int dump_one(const std::string& path) {
  Snapshot snap;
  if (!load(path, snap)) return 1;

  using elmo::util::TextTable;
  TextTable table{{"metric", "type", "value", "rate", "notes"}};
  table.set_align(2, TextTable::Align::kRight);
  table.set_align(3, TextTable::Align::kRight);
  for (const auto& [name, s] : snap.series) {
    if (s.type == "histogram") {
      const auto it = snap.hists.find(name);
      if (it == snap.hists.end()) continue;
      const auto [sum, count] = it->second;
      table.add_row(
          {name, "histogram",
           TextTable::fmt_count(static_cast<std::uint64_t>(count)),
           snap.uptime > 0 ? TextTable::fmt_rate(count / snap.uptime) : "",
           count > 0 ? "mean " + fmt_seconds(sum / count) : ""});
      continue;
    }
    if (!s.seen) continue;
    const bool is_counter = s.type == "counter";
    table.add_row(
        {name, s.type.empty() ? "untyped" : s.type,
         is_counter ? TextTable::fmt_count(static_cast<std::uint64_t>(s.value))
                    : TextTable::fmt(s.value),
         is_counter && snap.uptime > 0
             ? TextTable::fmt_rate(s.value / snap.uptime)
             : "",
         ""});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

// One comparable scalar per series: counter/gauge value, histogram count.
bool scalar_of(const Snapshot& snap, const std::string& name,
               std::string& type, double& value) {
  const auto it = snap.series.find(name);
  if (it == snap.series.end()) return false;
  if (it->second.type == "histogram") {
    const auto h = snap.hists.find(name);
    if (h == snap.hists.end()) return false;
    type = "histogram";
    value = h->second.second;
    return true;
  }
  if (!it->second.seen) return false;
  type = it->second.type.empty() ? "untyped" : it->second.type;
  value = it->second.value;
  return true;
}

std::string fmt_value(const std::string& type, double value) {
  using elmo::util::TextTable;
  if (type == "counter" || type == "histogram") {
    return TextTable::fmt_count(static_cast<std::uint64_t>(value));
  }
  return TextTable::fmt(value);
}

int dump_diff(const std::string& path_a, const std::string& path_b) {
  Snapshot a, b;
  if (!load(path_a, a) || !load(path_b, b)) return 1;

  std::set<std::string> names;
  for (const auto& [name, s] : a.series) names.insert(name);
  for (const auto& [name, s] : b.series) names.insert(name);

  using elmo::util::TextTable;
  TextTable table{{"metric", "type", "a", "b", "delta", "rate"}};
  table.set_align(2, TextTable::Align::kRight);
  table.set_align(3, TextTable::Align::kRight);
  table.set_align(4, TextTable::Align::kRight);
  table.set_align(5, TextTable::Align::kRight);

  for (const auto& name : names) {
    std::string type_a, type_b;
    double va = 0, vb = 0;
    const bool in_a = scalar_of(a, name, type_a, va);
    const bool in_b = scalar_of(b, name, type_b, vb);
    if (!in_a && !in_b) continue;
    const std::string type = in_b ? type_b : type_a;

    std::string delta;
    if (in_a && in_b) {
      const double d = vb - va;
      delta = (d >= 0 ? "+" : "-") + fmt_value(type, d >= 0 ? d : -d);
    }

    // Rate ratio: normalize each side by its own uptime so runs of unequal
    // length compare work-per-second, not raw totals. Only meaningful for
    // monotonic series (counters, histogram counts).
    std::string ratio;
    const bool monotonic = type == "counter" || type == "histogram";
    if (in_a && in_b && monotonic && a.uptime > 0 && b.uptime > 0 && va > 0) {
      ratio = TextTable::fmt((vb / b.uptime) / (va / a.uptime)) + "x";
    }

    table.add_row({name, type, in_a ? fmt_value(type_a, va) : "-",
                   in_b ? fmt_value(type_b, vb) : "-", delta, ratio});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

// Repeated-scrape mode: every `interval` seconds re-load `path`, append each
// series scalar into the store as one sampling window, and render the
// per-series value / delta / rate. Rates come from the store's wall-clock
// sample timestamps, so they are live observed rates (counts per second of
// real time between scrapes), not the uptime-normalized averages of
// single-file mode.
int watch(const std::string& path, std::int64_t interval,
          std::int64_t iterations) {
  if (path == "-") {
    std::fprintf(stderr,
                 "metrics_dump: --watch needs a re-readable file, not stdin\n");
    return 1;
  }
  elmo::obs::TimeSeriesStore store{64};
  std::map<std::string, std::string> types;  // name -> last-seen type
  for (std::int64_t i = 0; iterations <= 0 || i < iterations; ++i) {
    if (i > 0 && interval > 0) {
      std::this_thread::sleep_for(std::chrono::seconds(interval));
    }
    Snapshot snap;
    if (!load(path, snap)) return 1;
    for (const auto& [name, series] : snap.series) {
      std::string type;
      double value = 0;
      if (!scalar_of(snap, name, type, value)) continue;
      types[name] = type;
      store.append(name, value);
    }
    const auto window = store.advance();

    using elmo::util::TextTable;
    TextTable table{{"metric", "type", "value", "delta", "rate"}};
    table.set_align(2, TextTable::Align::kRight);
    table.set_align(3, TextTable::Align::kRight);
    table.set_align(4, TextTable::Align::kRight);
    for (const auto& [name, type] : types) {
      const auto* sample = store.last(name);
      if (sample == nullptr || sample->window != window) {
        table.add_row({name, type, "-", "", ""});  // vanished from the file
        continue;
      }
      std::string delta;
      if (const auto d = store.delta(name)) {
        delta = (*d >= 0 ? "+" : "-") + fmt_value(type, *d >= 0 ? *d : -*d);
      }
      std::string rate;
      const bool monotonic = type == "counter" || type == "histogram";
      if (const auto r = store.rate(name); r && monotonic && *r >= 0) {
        rate = TextTable::fmt_rate(*r);
      }
      table.add_row({name, type, fmt_value(type, sample->value), delta, rate});
    }
    std::printf("== %s  scrape %lld  window %llu ==\n", path.c_str(),
                static_cast<long long>(i + 1),
                static_cast<unsigned long long>(window));
    std::fputs(table.render().c_str(), stdout);
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string{argv[1]} == "--diff") {
    if (argc != 4) {
      std::fprintf(stderr, "usage: metrics_dump --diff <a> <b>\n");
      return 1;
    }
    return dump_diff(argv[2], argv[3]);
  }
  // Split argv into flag-shaped tokens (fed to util::Flags) and positionals
  // (the exposition path), so `metrics_dump --watch=2 run.metrics` works
  // without the path earning a Flags parse warning.
  std::vector<char*> flag_argv{argv[0]};
  std::string path = "-";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      flag_argv.push_back(argv[i]);
    } else {
      path = argv[i];
    }
  }
  const elmo::util::Flags flags{static_cast<int>(flag_argv.size()),
                                flag_argv.data()};
  const auto watch_secs = flags.get_int("WATCH", -1);
  if (watch_secs >= 0) {
    return watch(path, watch_secs, flags.get_int("ITERATIONS", 0));
  }
  return dump_one(path);
}
