// Pretty-printer for the Prometheus-style metrics exposition the benches and
// tools write via --metrics=<path> (DESIGN.md §9).
//
//   tools/metrics_dump <file>      # or "-" / no argument for stdin
//
// Counters get a right-aligned rate column (value / elmo_uptime_seconds,
// K/M/G suffixes); histograms are folded from their _sum/_count series into
// one row with observation count, rate, and mean.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "util/table.h"

namespace {

struct Series {
  std::string type;  // counter | gauge | histogram | untyped
  double value = 0;
  bool seen = false;
};

std::string fmt_seconds(double s) {
  char buf[32];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.1fus", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fs", s);
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::istream* in = &std::cin;
  std::ifstream file;
  const std::string path = argc > 1 ? argv[1] : "-";
  if (path != "-") {
    file.open(path);
    if (!file) {
      std::fprintf(stderr, "metrics_dump: cannot open %s\n", path.c_str());
      return 1;
    }
    in = &file;
  }

  // name -> series; histogram _sum/_count series are folded under the base
  // name. Insertion-ordered output would need a vector; the exposition is
  // already name-sorted, so a map keeps that order.
  std::map<std::string, Series> series;
  std::map<std::string, std::pair<double, double>> hists;  // sum, count
  std::string line;
  while (std::getline(*in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ls{line};
      std::string hash, kind, name, type;
      ls >> hash >> kind >> name >> type;
      if (kind == "TYPE") series[name].type = type;
      continue;
    }
    const auto space = line.find_last_of(' ');
    if (space == std::string::npos) continue;
    std::string name = line.substr(0, space);
    const double value = std::strtod(line.c_str() + space + 1, nullptr);
    if (const auto brace = name.find('{'); brace != std::string::npos) {
      name.resize(brace);  // histogram buckets fold under the series name
    }
    if (name.ends_with("_bucket")) continue;
    if (name.ends_with("_sum")) {
      hists[name.substr(0, name.size() - 4)].first = value;
      continue;
    }
    if (name.ends_with("_count")) {
      const auto base = name.substr(0, name.size() - 6);
      if (series.contains(base) && series[base].type == "histogram") {
        hists[base].second = value;
        continue;
      }
    }
    auto& s = series[name];
    s.value = value;
    s.seen = true;
  }

  const double uptime = series.contains("elmo_uptime_seconds")
                            ? series["elmo_uptime_seconds"].value
                            : 0.0;

  using elmo::util::TextTable;
  TextTable table{{"metric", "type", "value", "rate", "notes"}};
  table.set_align(2, TextTable::Align::kRight);
  table.set_align(3, TextTable::Align::kRight);
  for (const auto& [name, s] : series) {
    if (s.type == "histogram") {
      const auto it = hists.find(name);
      if (it == hists.end()) continue;
      const auto [sum, count] = it->second;
      table.add_row(
          {name, "histogram",
           TextTable::fmt_count(static_cast<std::uint64_t>(count)),
           uptime > 0 ? TextTable::fmt_rate(count / uptime) : "",
           count > 0 ? "mean " + fmt_seconds(sum / count) : ""});
      continue;
    }
    if (!s.seen) continue;
    const bool is_counter = s.type == "counter";
    table.add_row(
        {name, s.type.empty() ? "untyped" : s.type,
         is_counter ? TextTable::fmt_count(static_cast<std::uint64_t>(s.value))
                    : TextTable::fmt(s.value),
         is_counter && uptime > 0 ? TextTable::fmt_rate(s.value / uptime) : "",
         ""});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
