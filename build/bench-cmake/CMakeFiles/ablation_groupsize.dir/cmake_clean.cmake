file(REMOVE_RECURSE
  "../bench/ablation_groupsize"
  "../bench/ablation_groupsize.pdb"
  "CMakeFiles/ablation_groupsize.dir/ablation_groupsize.cc.o"
  "CMakeFiles/ablation_groupsize.dir/ablation_groupsize.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_groupsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
