file(REMOVE_RECURSE
  "../bench/text_failures"
  "../bench/text_failures.pdb"
  "CMakeFiles/text_failures.dir/text_failures.cc.o"
  "CMakeFiles/text_failures.dir/text_failures.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
