# Empty compiler generated dependencies file for text_failures.
# This may be replaced when dependencies are built.
