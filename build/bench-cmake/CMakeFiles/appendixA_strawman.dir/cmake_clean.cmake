file(REMOVE_RECURSE
  "../bench/appendixA_strawman"
  "../bench/appendixA_strawman.pdb"
  "CMakeFiles/appendixA_strawman.dir/appendixA_strawman.cc.o"
  "CMakeFiles/appendixA_strawman.dir/appendixA_strawman.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendixA_strawman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
