# Empty dependencies file for appendixA_strawman.
# This may be replaced when dependencies are built.
