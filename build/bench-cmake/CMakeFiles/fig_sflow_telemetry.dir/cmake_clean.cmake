file(REMOVE_RECURSE
  "../bench/fig_sflow_telemetry"
  "../bench/fig_sflow_telemetry.pdb"
  "CMakeFiles/fig_sflow_telemetry.dir/fig_sflow_telemetry.cc.o"
  "CMakeFiles/fig_sflow_telemetry.dir/fig_sflow_telemetry.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_sflow_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
