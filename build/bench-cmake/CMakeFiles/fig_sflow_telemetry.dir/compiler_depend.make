# Empty compiler generated dependencies file for fig_sflow_telemetry.
# This may be replaced when dependencies are built.
