# Empty compiler generated dependencies file for fig4_placement_p12.
# This may be replaced when dependencies are built.
