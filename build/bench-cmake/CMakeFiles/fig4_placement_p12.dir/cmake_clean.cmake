file(REMOVE_RECURSE
  "../bench/fig4_placement_p12"
  "../bench/fig4_placement_p12.pdb"
  "CMakeFiles/fig4_placement_p12.dir/fig4_placement_p12.cc.o"
  "CMakeFiles/fig4_placement_p12.dir/fig4_placement_p12.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_placement_p12.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
