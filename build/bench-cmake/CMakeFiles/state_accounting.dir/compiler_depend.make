# Empty compiler generated dependencies file for state_accounting.
# This may be replaced when dependencies are built.
