file(REMOVE_RECURSE
  "../bench/state_accounting"
  "../bench/state_accounting.pdb"
  "CMakeFiles/state_accounting.dir/state_accounting.cc.o"
  "CMakeFiles/state_accounting.dir/state_accounting.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
