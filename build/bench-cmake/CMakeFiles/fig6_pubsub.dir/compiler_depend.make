# Empty compiler generated dependencies file for fig6_pubsub.
# This may be replaced when dependencies are built.
