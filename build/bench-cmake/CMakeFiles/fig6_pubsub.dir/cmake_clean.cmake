file(REMOVE_RECURSE
  "../bench/fig6_pubsub"
  "../bench/fig6_pubsub.pdb"
  "CMakeFiles/fig6_pubsub.dir/fig6_pubsub.cc.o"
  "CMakeFiles/fig6_pubsub.dir/fig6_pubsub.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
