file(REMOVE_RECURSE
  "../bench/fig5_placement_p1"
  "../bench/fig5_placement_p1.pdb"
  "CMakeFiles/fig5_placement_p1.dir/fig5_placement_p1.cc.o"
  "CMakeFiles/fig5_placement_p1.dir/fig5_placement_p1.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_placement_p1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
