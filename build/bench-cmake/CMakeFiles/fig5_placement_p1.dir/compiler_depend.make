# Empty compiler generated dependencies file for fig5_placement_p1.
# This may be replaced when dependencies are built.
