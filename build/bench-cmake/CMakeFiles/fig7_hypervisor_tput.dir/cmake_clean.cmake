file(REMOVE_RECURSE
  "../bench/fig7_hypervisor_tput"
  "../bench/fig7_hypervisor_tput.pdb"
  "CMakeFiles/fig7_hypervisor_tput.dir/fig7_hypervisor_tput.cc.o"
  "CMakeFiles/fig7_hypervisor_tput.dir/fig7_hypervisor_tput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_hypervisor_tput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
