# Empty dependencies file for fig7_hypervisor_tput.
# This may be replaced when dependencies are built.
