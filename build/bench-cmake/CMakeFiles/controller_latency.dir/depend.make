# Empty dependencies file for controller_latency.
# This may be replaced when dependencies are built.
