file(REMOVE_RECURSE
  "../bench/controller_latency"
  "../bench/controller_latency.pdb"
  "CMakeFiles/controller_latency.dir/controller_latency.cc.o"
  "CMakeFiles/controller_latency.dir/controller_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
