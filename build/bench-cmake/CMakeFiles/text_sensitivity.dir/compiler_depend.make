# Empty compiler generated dependencies file for text_sensitivity.
# This may be replaced when dependencies are built.
