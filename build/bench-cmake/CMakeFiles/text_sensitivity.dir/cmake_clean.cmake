file(REMOVE_RECURSE
  "../bench/text_sensitivity"
  "../bench/text_sensitivity.pdb"
  "CMakeFiles/text_sensitivity.dir/text_sensitivity.cc.o"
  "CMakeFiles/text_sensitivity.dir/text_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
