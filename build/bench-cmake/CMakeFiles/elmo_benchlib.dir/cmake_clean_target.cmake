file(REMOVE_RECURSE
  "libelmo_benchlib.a"
)
