# Empty compiler generated dependencies file for elmo_benchlib.
# This may be replaced when dependencies are built.
