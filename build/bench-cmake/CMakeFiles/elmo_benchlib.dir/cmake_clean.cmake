file(REMOVE_RECURSE
  "CMakeFiles/elmo_benchlib.dir/figlib.cc.o"
  "CMakeFiles/elmo_benchlib.dir/figlib.cc.o.d"
  "libelmo_benchlib.a"
  "libelmo_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
