file(REMOVE_RECURSE
  "../bench/table2_churn"
  "../bench/table2_churn.pdb"
  "CMakeFiles/table2_churn.dir/table2_churn.cc.o"
  "CMakeFiles/table2_churn.dir/table2_churn.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
