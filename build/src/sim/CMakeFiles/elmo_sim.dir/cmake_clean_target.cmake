file(REMOVE_RECURSE
  "libelmo_sim.a"
)
