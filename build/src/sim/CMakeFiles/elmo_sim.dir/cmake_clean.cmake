file(REMOVE_RECURSE
  "CMakeFiles/elmo_sim.dir/fabric.cc.o"
  "CMakeFiles/elmo_sim.dir/fabric.cc.o.d"
  "CMakeFiles/elmo_sim.dir/mtrace.cc.o"
  "CMakeFiles/elmo_sim.dir/mtrace.cc.o.d"
  "libelmo_sim.a"
  "libelmo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
