# Empty compiler generated dependencies file for elmo_sim.
# This may be replaced when dependencies are built.
