# Empty compiler generated dependencies file for elmo_cloud.
# This may be replaced when dependencies are built.
