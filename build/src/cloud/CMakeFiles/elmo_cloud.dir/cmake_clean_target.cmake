file(REMOVE_RECURSE
  "libelmo_cloud.a"
)
