file(REMOVE_RECURSE
  "CMakeFiles/elmo_cloud.dir/cloud.cc.o"
  "CMakeFiles/elmo_cloud.dir/cloud.cc.o.d"
  "libelmo_cloud.a"
  "libelmo_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
