# Empty compiler generated dependencies file for elmo_apps.
# This may be replaced when dependencies are built.
