file(REMOVE_RECURSE
  "libelmo_apps.a"
)
