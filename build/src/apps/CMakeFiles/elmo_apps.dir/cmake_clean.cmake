file(REMOVE_RECURSE
  "CMakeFiles/elmo_apps.dir/igmp.cc.o"
  "CMakeFiles/elmo_apps.dir/igmp.cc.o.d"
  "CMakeFiles/elmo_apps.dir/multidc.cc.o"
  "CMakeFiles/elmo_apps.dir/multidc.cc.o.d"
  "CMakeFiles/elmo_apps.dir/pubsub.cc.o"
  "CMakeFiles/elmo_apps.dir/pubsub.cc.o.d"
  "CMakeFiles/elmo_apps.dir/reliable.cc.o"
  "CMakeFiles/elmo_apps.dir/reliable.cc.o.d"
  "CMakeFiles/elmo_apps.dir/telemetry.cc.o"
  "CMakeFiles/elmo_apps.dir/telemetry.cc.o.d"
  "libelmo_apps.a"
  "libelmo_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
