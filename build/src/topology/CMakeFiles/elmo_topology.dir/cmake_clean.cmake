file(REMOVE_RECURSE
  "CMakeFiles/elmo_topology.dir/clos.cc.o"
  "CMakeFiles/elmo_topology.dir/clos.cc.o.d"
  "CMakeFiles/elmo_topology.dir/xpander.cc.o"
  "CMakeFiles/elmo_topology.dir/xpander.cc.o.d"
  "libelmo_topology.a"
  "libelmo_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
