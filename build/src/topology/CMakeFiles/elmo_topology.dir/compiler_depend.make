# Empty compiler generated dependencies file for elmo_topology.
# This may be replaced when dependencies are built.
