file(REMOVE_RECURSE
  "libelmo_topology.a"
)
