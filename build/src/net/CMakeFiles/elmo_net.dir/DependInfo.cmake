
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/bitio.cc" "src/net/CMakeFiles/elmo_net.dir/bitio.cc.o" "gcc" "src/net/CMakeFiles/elmo_net.dir/bitio.cc.o.d"
  "/root/repo/src/net/bitmap.cc" "src/net/CMakeFiles/elmo_net.dir/bitmap.cc.o" "gcc" "src/net/CMakeFiles/elmo_net.dir/bitmap.cc.o.d"
  "/root/repo/src/net/headers.cc" "src/net/CMakeFiles/elmo_net.dir/headers.cc.o" "gcc" "src/net/CMakeFiles/elmo_net.dir/headers.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/net/CMakeFiles/elmo_net.dir/packet.cc.o" "gcc" "src/net/CMakeFiles/elmo_net.dir/packet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/elmo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
