# Empty compiler generated dependencies file for elmo_net.
# This may be replaced when dependencies are built.
