file(REMOVE_RECURSE
  "CMakeFiles/elmo_net.dir/bitio.cc.o"
  "CMakeFiles/elmo_net.dir/bitio.cc.o.d"
  "CMakeFiles/elmo_net.dir/bitmap.cc.o"
  "CMakeFiles/elmo_net.dir/bitmap.cc.o.d"
  "CMakeFiles/elmo_net.dir/headers.cc.o"
  "CMakeFiles/elmo_net.dir/headers.cc.o.d"
  "CMakeFiles/elmo_net.dir/packet.cc.o"
  "CMakeFiles/elmo_net.dir/packet.cc.o.d"
  "libelmo_net.a"
  "libelmo_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
