file(REMOVE_RECURSE
  "libelmo_net.a"
)
