
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elmo/churn.cc" "src/elmo/CMakeFiles/elmo_core.dir/churn.cc.o" "gcc" "src/elmo/CMakeFiles/elmo_core.dir/churn.cc.o.d"
  "/root/repo/src/elmo/clustering.cc" "src/elmo/CMakeFiles/elmo_core.dir/clustering.cc.o" "gcc" "src/elmo/CMakeFiles/elmo_core.dir/clustering.cc.o.d"
  "/root/repo/src/elmo/controller.cc" "src/elmo/CMakeFiles/elmo_core.dir/controller.cc.o" "gcc" "src/elmo/CMakeFiles/elmo_core.dir/controller.cc.o.d"
  "/root/repo/src/elmo/encoder.cc" "src/elmo/CMakeFiles/elmo_core.dir/encoder.cc.o" "gcc" "src/elmo/CMakeFiles/elmo_core.dir/encoder.cc.o.d"
  "/root/repo/src/elmo/evaluator.cc" "src/elmo/CMakeFiles/elmo_core.dir/evaluator.cc.o" "gcc" "src/elmo/CMakeFiles/elmo_core.dir/evaluator.cc.o.d"
  "/root/repo/src/elmo/header.cc" "src/elmo/CMakeFiles/elmo_core.dir/header.cc.o" "gcc" "src/elmo/CMakeFiles/elmo_core.dir/header.cc.o.d"
  "/root/repo/src/elmo/snapshot.cc" "src/elmo/CMakeFiles/elmo_core.dir/snapshot.cc.o" "gcc" "src/elmo/CMakeFiles/elmo_core.dir/snapshot.cc.o.d"
  "/root/repo/src/elmo/srule_space.cc" "src/elmo/CMakeFiles/elmo_core.dir/srule_space.cc.o" "gcc" "src/elmo/CMakeFiles/elmo_core.dir/srule_space.cc.o.d"
  "/root/repo/src/elmo/tree.cc" "src/elmo/CMakeFiles/elmo_core.dir/tree.cc.o" "gcc" "src/elmo/CMakeFiles/elmo_core.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/elmo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/elmo_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/elmo_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/elmo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
