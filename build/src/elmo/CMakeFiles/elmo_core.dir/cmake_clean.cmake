file(REMOVE_RECURSE
  "CMakeFiles/elmo_core.dir/churn.cc.o"
  "CMakeFiles/elmo_core.dir/churn.cc.o.d"
  "CMakeFiles/elmo_core.dir/clustering.cc.o"
  "CMakeFiles/elmo_core.dir/clustering.cc.o.d"
  "CMakeFiles/elmo_core.dir/controller.cc.o"
  "CMakeFiles/elmo_core.dir/controller.cc.o.d"
  "CMakeFiles/elmo_core.dir/encoder.cc.o"
  "CMakeFiles/elmo_core.dir/encoder.cc.o.d"
  "CMakeFiles/elmo_core.dir/evaluator.cc.o"
  "CMakeFiles/elmo_core.dir/evaluator.cc.o.d"
  "CMakeFiles/elmo_core.dir/header.cc.o"
  "CMakeFiles/elmo_core.dir/header.cc.o.d"
  "CMakeFiles/elmo_core.dir/snapshot.cc.o"
  "CMakeFiles/elmo_core.dir/snapshot.cc.o.d"
  "CMakeFiles/elmo_core.dir/srule_space.cc.o"
  "CMakeFiles/elmo_core.dir/srule_space.cc.o.d"
  "CMakeFiles/elmo_core.dir/tree.cc.o"
  "CMakeFiles/elmo_core.dir/tree.cc.o.d"
  "libelmo_core.a"
  "libelmo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
