file(REMOVE_RECURSE
  "CMakeFiles/elmo_dataplane.dir/hypervisor_switch.cc.o"
  "CMakeFiles/elmo_dataplane.dir/hypervisor_switch.cc.o.d"
  "CMakeFiles/elmo_dataplane.dir/network_switch.cc.o"
  "CMakeFiles/elmo_dataplane.dir/network_switch.cc.o.d"
  "libelmo_dataplane.a"
  "libelmo_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
