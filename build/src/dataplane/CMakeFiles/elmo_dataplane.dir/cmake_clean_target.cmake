file(REMOVE_RECURSE
  "libelmo_dataplane.a"
)
