# Empty dependencies file for elmo_dataplane.
# This may be replaced when dependencies are built.
