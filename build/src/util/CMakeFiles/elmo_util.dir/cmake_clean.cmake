file(REMOVE_RECURSE
  "CMakeFiles/elmo_util.dir/flags.cc.o"
  "CMakeFiles/elmo_util.dir/flags.cc.o.d"
  "CMakeFiles/elmo_util.dir/rng.cc.o"
  "CMakeFiles/elmo_util.dir/rng.cc.o.d"
  "CMakeFiles/elmo_util.dir/stats.cc.o"
  "CMakeFiles/elmo_util.dir/stats.cc.o.d"
  "CMakeFiles/elmo_util.dir/table.cc.o"
  "CMakeFiles/elmo_util.dir/table.cc.o.d"
  "libelmo_util.a"
  "libelmo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
