file(REMOVE_RECURSE
  "libelmo_util.a"
)
