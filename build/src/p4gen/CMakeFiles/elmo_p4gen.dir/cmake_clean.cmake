file(REMOVE_RECURSE
  "CMakeFiles/elmo_p4gen.dir/p4gen.cc.o"
  "CMakeFiles/elmo_p4gen.dir/p4gen.cc.o.d"
  "libelmo_p4gen.a"
  "libelmo_p4gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_p4gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
