file(REMOVE_RECURSE
  "libelmo_p4gen.a"
)
