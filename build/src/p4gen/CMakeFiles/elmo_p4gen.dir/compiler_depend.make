# Empty compiler generated dependencies file for elmo_p4gen.
# This may be replaced when dependencies are built.
