file(REMOVE_RECURSE
  "CMakeFiles/elmo_p4rt.dir/runtime.cc.o"
  "CMakeFiles/elmo_p4rt.dir/runtime.cc.o.d"
  "libelmo_p4rt.a"
  "libelmo_p4rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_p4rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
