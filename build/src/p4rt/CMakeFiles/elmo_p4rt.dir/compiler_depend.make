# Empty compiler generated dependencies file for elmo_p4rt.
# This may be replaced when dependencies are built.
