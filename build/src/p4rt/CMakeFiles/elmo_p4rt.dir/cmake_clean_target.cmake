file(REMOVE_RECURSE
  "libelmo_p4rt.a"
)
