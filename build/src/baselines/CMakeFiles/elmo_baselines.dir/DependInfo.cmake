
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/hostcast.cc" "src/baselines/CMakeFiles/elmo_baselines.dir/hostcast.cc.o" "gcc" "src/baselines/CMakeFiles/elmo_baselines.dir/hostcast.cc.o.d"
  "/root/repo/src/baselines/li_multicast.cc" "src/baselines/CMakeFiles/elmo_baselines.dir/li_multicast.cc.o" "gcc" "src/baselines/CMakeFiles/elmo_baselines.dir/li_multicast.cc.o.d"
  "/root/repo/src/baselines/rmt.cc" "src/baselines/CMakeFiles/elmo_baselines.dir/rmt.cc.o" "gcc" "src/baselines/CMakeFiles/elmo_baselines.dir/rmt.cc.o.d"
  "/root/repo/src/baselines/schemes.cc" "src/baselines/CMakeFiles/elmo_baselines.dir/schemes.cc.o" "gcc" "src/baselines/CMakeFiles/elmo_baselines.dir/schemes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/elmo/CMakeFiles/elmo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/elmo_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/elmo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/elmo_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/elmo_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
