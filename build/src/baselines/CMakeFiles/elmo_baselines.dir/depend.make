# Empty dependencies file for elmo_baselines.
# This may be replaced when dependencies are built.
