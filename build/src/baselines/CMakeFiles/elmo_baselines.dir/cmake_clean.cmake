file(REMOVE_RECURSE
  "CMakeFiles/elmo_baselines.dir/hostcast.cc.o"
  "CMakeFiles/elmo_baselines.dir/hostcast.cc.o.d"
  "CMakeFiles/elmo_baselines.dir/li_multicast.cc.o"
  "CMakeFiles/elmo_baselines.dir/li_multicast.cc.o.d"
  "CMakeFiles/elmo_baselines.dir/rmt.cc.o"
  "CMakeFiles/elmo_baselines.dir/rmt.cc.o.d"
  "CMakeFiles/elmo_baselines.dir/schemes.cc.o"
  "CMakeFiles/elmo_baselines.dir/schemes.cc.o.d"
  "libelmo_baselines.a"
  "libelmo_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elmo_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
