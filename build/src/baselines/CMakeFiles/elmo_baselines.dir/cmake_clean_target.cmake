file(REMOVE_RECURSE
  "libelmo_baselines.a"
)
