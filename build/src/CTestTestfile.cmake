# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("net")
subdirs("topology")
subdirs("cloud")
subdirs("elmo")
subdirs("dataplane")
subdirs("sim")
subdirs("baselines")
subdirs("apps")
subdirs("p4gen")
subdirs("p4rt")
