file(REMOVE_RECURSE
  "CMakeFiles/telemetry_fanout.dir/telemetry_fanout.cpp.o"
  "CMakeFiles/telemetry_fanout.dir/telemetry_fanout.cpp.o.d"
  "telemetry_fanout"
  "telemetry_fanout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
