
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/telemetry_fanout.cpp" "examples/CMakeFiles/telemetry_fanout.dir/telemetry_fanout.cpp.o" "gcc" "examples/CMakeFiles/telemetry_fanout.dir/telemetry_fanout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/elmo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/elmo_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/elmo/CMakeFiles/elmo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/elmo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/elmo_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/elmo_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/elmo_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/elmo_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
