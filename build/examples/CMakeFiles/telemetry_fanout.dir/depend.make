# Empty dependencies file for telemetry_fanout.
# This may be replaced when dependencies are built.
