# Empty dependencies file for mtrace_tool.
# This may be replaced when dependencies are built.
