file(REMOVE_RECURSE
  "CMakeFiles/mtrace_tool.dir/mtrace_tool.cpp.o"
  "CMakeFiles/mtrace_tool.dir/mtrace_tool.cpp.o.d"
  "mtrace_tool"
  "mtrace_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtrace_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
