file(REMOVE_RECURSE
  "CMakeFiles/market_data_fanout.dir/market_data_fanout.cpp.o"
  "CMakeFiles/market_data_fanout.dir/market_data_fanout.cpp.o.d"
  "market_data_fanout"
  "market_data_fanout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_data_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
