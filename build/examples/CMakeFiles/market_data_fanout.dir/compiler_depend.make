# Empty compiler generated dependencies file for market_data_fanout.
# This may be replaced when dependencies are built.
