
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/elmo/churn_test.cc" "tests/CMakeFiles/core_tests.dir/elmo/churn_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/elmo/churn_test.cc.o.d"
  "/root/repo/tests/elmo/clustering_test.cc" "tests/CMakeFiles/core_tests.dir/elmo/clustering_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/elmo/clustering_test.cc.o.d"
  "/root/repo/tests/elmo/controller_test.cc" "tests/CMakeFiles/core_tests.dir/elmo/controller_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/elmo/controller_test.cc.o.d"
  "/root/repo/tests/elmo/edge_cases_test.cc" "tests/CMakeFiles/core_tests.dir/elmo/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/elmo/edge_cases_test.cc.o.d"
  "/root/repo/tests/elmo/encoder_test.cc" "tests/CMakeFiles/core_tests.dir/elmo/encoder_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/elmo/encoder_test.cc.o.d"
  "/root/repo/tests/elmo/evaluator_test.cc" "tests/CMakeFiles/core_tests.dir/elmo/evaluator_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/elmo/evaluator_test.cc.o.d"
  "/root/repo/tests/elmo/fuzz_test.cc" "tests/CMakeFiles/core_tests.dir/elmo/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/elmo/fuzz_test.cc.o.d"
  "/root/repo/tests/elmo/header_test.cc" "tests/CMakeFiles/core_tests.dir/elmo/header_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/elmo/header_test.cc.o.d"
  "/root/repo/tests/elmo/invariants_test.cc" "tests/CMakeFiles/core_tests.dir/elmo/invariants_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/elmo/invariants_test.cc.o.d"
  "/root/repo/tests/elmo/running_example_test.cc" "tests/CMakeFiles/core_tests.dir/elmo/running_example_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/elmo/running_example_test.cc.o.d"
  "/root/repo/tests/elmo/snapshot_test.cc" "tests/CMakeFiles/core_tests.dir/elmo/snapshot_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/elmo/snapshot_test.cc.o.d"
  "/root/repo/tests/elmo/srule_space_test.cc" "tests/CMakeFiles/core_tests.dir/elmo/srule_space_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/elmo/srule_space_test.cc.o.d"
  "/root/repo/tests/elmo/tree_test.cc" "tests/CMakeFiles/core_tests.dir/elmo/tree_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/elmo/tree_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/elmo/CMakeFiles/elmo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/elmo_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/elmo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/elmo_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/elmo_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/elmo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/elmo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
