file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/elmo/churn_test.cc.o"
  "CMakeFiles/core_tests.dir/elmo/churn_test.cc.o.d"
  "CMakeFiles/core_tests.dir/elmo/clustering_test.cc.o"
  "CMakeFiles/core_tests.dir/elmo/clustering_test.cc.o.d"
  "CMakeFiles/core_tests.dir/elmo/controller_test.cc.o"
  "CMakeFiles/core_tests.dir/elmo/controller_test.cc.o.d"
  "CMakeFiles/core_tests.dir/elmo/edge_cases_test.cc.o"
  "CMakeFiles/core_tests.dir/elmo/edge_cases_test.cc.o.d"
  "CMakeFiles/core_tests.dir/elmo/encoder_test.cc.o"
  "CMakeFiles/core_tests.dir/elmo/encoder_test.cc.o.d"
  "CMakeFiles/core_tests.dir/elmo/evaluator_test.cc.o"
  "CMakeFiles/core_tests.dir/elmo/evaluator_test.cc.o.d"
  "CMakeFiles/core_tests.dir/elmo/fuzz_test.cc.o"
  "CMakeFiles/core_tests.dir/elmo/fuzz_test.cc.o.d"
  "CMakeFiles/core_tests.dir/elmo/header_test.cc.o"
  "CMakeFiles/core_tests.dir/elmo/header_test.cc.o.d"
  "CMakeFiles/core_tests.dir/elmo/invariants_test.cc.o"
  "CMakeFiles/core_tests.dir/elmo/invariants_test.cc.o.d"
  "CMakeFiles/core_tests.dir/elmo/running_example_test.cc.o"
  "CMakeFiles/core_tests.dir/elmo/running_example_test.cc.o.d"
  "CMakeFiles/core_tests.dir/elmo/snapshot_test.cc.o"
  "CMakeFiles/core_tests.dir/elmo/snapshot_test.cc.o.d"
  "CMakeFiles/core_tests.dir/elmo/srule_space_test.cc.o"
  "CMakeFiles/core_tests.dir/elmo/srule_space_test.cc.o.d"
  "CMakeFiles/core_tests.dir/elmo/tree_test.cc.o"
  "CMakeFiles/core_tests.dir/elmo/tree_test.cc.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
