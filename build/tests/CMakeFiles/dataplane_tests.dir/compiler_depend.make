# Empty compiler generated dependencies file for dataplane_tests.
# This may be replaced when dependencies are built.
