file(REMOVE_RECURSE
  "CMakeFiles/dataplane_tests.dir/dataplane/hypervisor_test.cc.o"
  "CMakeFiles/dataplane_tests.dir/dataplane/hypervisor_test.cc.o.d"
  "CMakeFiles/dataplane_tests.dir/dataplane/legacy_test.cc.o"
  "CMakeFiles/dataplane_tests.dir/dataplane/legacy_test.cc.o.d"
  "CMakeFiles/dataplane_tests.dir/dataplane/multipath_test.cc.o"
  "CMakeFiles/dataplane_tests.dir/dataplane/multipath_test.cc.o.d"
  "CMakeFiles/dataplane_tests.dir/dataplane/network_switch_test.cc.o"
  "CMakeFiles/dataplane_tests.dir/dataplane/network_switch_test.cc.o.d"
  "dataplane_tests"
  "dataplane_tests.pdb"
  "dataplane_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataplane_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
