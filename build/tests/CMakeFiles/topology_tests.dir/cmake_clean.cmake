file(REMOVE_RECURSE
  "CMakeFiles/topology_tests.dir/topology/clos_test.cc.o"
  "CMakeFiles/topology_tests.dir/topology/clos_test.cc.o.d"
  "CMakeFiles/topology_tests.dir/topology/xpander_test.cc.o"
  "CMakeFiles/topology_tests.dir/topology/xpander_test.cc.o.d"
  "topology_tests"
  "topology_tests.pdb"
  "topology_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
