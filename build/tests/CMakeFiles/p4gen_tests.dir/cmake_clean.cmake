file(REMOVE_RECURSE
  "CMakeFiles/p4gen_tests.dir/p4gen/p4gen_test.cc.o"
  "CMakeFiles/p4gen_tests.dir/p4gen/p4gen_test.cc.o.d"
  "p4gen_tests"
  "p4gen_tests.pdb"
  "p4gen_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p4gen_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
