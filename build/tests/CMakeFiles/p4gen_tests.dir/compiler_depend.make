# Empty compiler generated dependencies file for p4gen_tests.
# This may be replaced when dependencies are built.
