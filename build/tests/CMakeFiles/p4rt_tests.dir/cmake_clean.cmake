file(REMOVE_RECURSE
  "CMakeFiles/p4rt_tests.dir/p4rt/runtime_test.cc.o"
  "CMakeFiles/p4rt_tests.dir/p4rt/runtime_test.cc.o.d"
  "p4rt_tests"
  "p4rt_tests.pdb"
  "p4rt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p4rt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
