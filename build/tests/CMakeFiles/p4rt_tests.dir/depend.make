# Empty dependencies file for p4rt_tests.
# This may be replaced when dependencies are built.
